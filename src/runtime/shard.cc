#include "runtime/shard.hh"

#include <algorithm>

#include "common/logging.hh"

namespace maicc
{

ShardEngine::ShardEngine(const ServingConfig &config,
                         const std::vector<ServedModel> &models_,
                         const std::vector<unsigned> &min_cores,
                         std::vector<RequestRecord> &requests_,
                         ProfileFn profile, unsigned shard_index)
    : cfg(config), models(models_), minCores(min_cores),
      requests(requests_), profileFn(std::move(profile)),
      shardIndex(shard_index), ledger(cfg.system.coreBudget),
      region(cfg.system.geometry),
      policy(makePolicy(cfg.policy, cfg.backfill))
{
    timeline.push_back({0, 0});
}

// Test/debug invariants, asserted at every event when
// cfg.selfCheck is set: the core budget holds, and the ledger
// (budget) and region (physical slots) stay in lock-step with the
// sum of the running regions.
void
ShardEngine::checkInvariants() const
{
    if (!cfg.selfCheck)
        return;
    maicc_assert(ledger.used() <= ledger.total());
    maicc_assert(ledger.used() == coresInFlight);
    maicc_assert(region.totalNodes() - region.freeNodes()
                     - region.deadNodes()
                 == coresInFlight);
}

bool
ShardEngine::enqueue(uint64_t id)
{
    if (queue.size() >= cfg.queueCapacity)
        return false;
    requests[id].shard = shardIndex;
    queue.push_back(id);
    return true;
}

void
ShardEngine::complete(Cycles now)
{
    // Completion bookkeeping: the batch's cores and serpentine
    // slots coalesce back before the caller considers the next
    // event (completion-first-on-ties is the caller's contract).
    maicc_assert(!running.empty());
    Running done = running.top();
    running.pop();
    ledger.release(done.cores);
    region.release(done.slots);
    maicc_assert(coresInFlight >= done.cores);
    coresInFlight -= done.cores;
    timeline.push_back({now, ledger.used()});
}

void
ShardEngine::tryAdmit(Cycles now)
{
    while (!queue.empty()) {
        // Snapshot the queue for the policy, in queue order. Cost
        // estimates (SJF) reuse the memoized per-(model, minCores)
        // service profiles, so only the first sight of a model pays
        // for a probe simulation.
        std::vector<QueuedRequest> view;
        view.reserve(queue.size());
        for (uint64_t qid : queue) {
            const RequestRecord &q = requests[qid];
            QueuedRequest v;
            v.id = qid;
            v.model = q.model;
            v.arrival = q.arrival;
            v.priorityClass = q.priorityClass;
            v.minCores = minCores[q.model];
            if (policy->wantsCostEstimates()) {
                v.costEstimate =
                    profileFn(q.model, v.minCores).latency;
            }
            view.push_back(v);
        }
        size_t pos = policy->pick(view, ledger.freeCores());
        if (pos == AdmissionPolicy::npos)
            break; // nothing admissible at this event
        maicc_assert(pos < queue.size());

        RequestRecord &head = requests[queue[pos]];
        unsigned min_cores = minCores[head.model];
        maicc_assert(min_cores <= ledger.freeCores());
        unsigned want = models[head.model].preferredCores;
        // Graceful degradation: once core-loss faults have shrunk
        // the region, wide preferred grants fragment what is left
        // and starve admission — fall back to minimum-region
        // grants so every survivor keeps serving.
        if (region.deadNodes() > 0)
            want = min_cores;
        unsigned grant =
            std::clamp(want == 0 ? min_cores : want, min_cores,
                       ledger.freeCores());

        // Carve a contiguous serpentine region — the shape the
        // (model, cores) service profile was simulated on. Under
        // fragmentation the budget can have cores free with no run
        // long enough: degrade gracefully instead of aborting —
        // retry at the minimum region, else leave the request
        // queued until a completion re-coalesces the region (the
        // region is empty whenever nothing runs, so admission
        // cannot stall forever).
        Running r;
        r.slots = region.allocateContiguous(grant);
        if (r.slots.empty() && grant > min_cores) {
            grant = min_cores;
            r.slots = region.allocateContiguous(grant);
        }
        if (r.slots.empty())
            break;

        bool ok = ledger.tryAllocate(grant);
        maicc_assert(ok);
        coresInFlight += grant;

        // Collect the admitted request plus same-model companions
        // into one batch. Default: only the contiguous same-model
        // run starting at the admitted position, so batching never
        // pulls a request past a different-model one (the
        // no-reordering contract). cfg.batchAcrossQueue restores
        // the whole-queue scan.
        std::vector<uint64_t> batch;
        unsigned max_batch = std::max(1u, cfg.maxBatch);
        if (cfg.batchAcrossQueue) {
            for (auto it = queue.begin() + pos;
                 it != queue.end() && batch.size() < max_batch;) {
                if (requests[*it].model == head.model) {
                    batch.push_back(*it);
                    it = queue.erase(it);
                } else {
                    ++it;
                }
            }
        } else {
            auto it = queue.begin() + pos;
            while (it != queue.end() && batch.size() < max_batch
                   && requests[*it].model == head.model) {
                batch.push_back(*it);
                it = queue.erase(it);
            }
        }
        maicc_assert(!batch.empty());

        r.cores = grant;
        r.firstId = batch.front();
        r.members = batch;

        const ServiceProfile &sp = profileFn(head.model, grant);
        Cycles lat = sp.latency;
        Cycles interval = sp.interval;
        // Transient DRAM-outage / NoC-degradation windows scale
        // the service profile at admission time. Applied only when
        // the product differs from 1.0 so the fault-free path runs
        // the exact pre-fault integer arithmetic.
        double slow = slowdownAt(now);
        if (slow != 1.0) {
            lat = static_cast<Cycles>(
                static_cast<double>(lat) * slow);
            interval = static_cast<Cycles>(
                static_cast<double>(interval) * slow);
        }
        minService = std::min(minService, lat);
        for (size_t k = 0; k < batch.size(); ++k) {
            RequestRecord &req = requests[batch[k]];
            req.start = now;
            req.cores = grant;
            req.batchSize = unsigned(batch.size());
            req.finish = now + lat + Cycles(k) * interval;
            r.finish = req.finish;
        }
        running.push(std::move(r));
        timeline.push_back({now, ledger.used()});
    }
    checkInvariants();
}

std::vector<uint64_t>
ShardEngine::failStop(Cycles now)
{
    // The recovery loop retires completions strictly before the
    // fault cycle first, so every batch still running here is
    // genuinely in flight — its members are killed mid-service and
    // must be re-dispatched elsewhere.
    std::vector<uint64_t> displaced;
    while (!running.empty()) {
        const Running &r = running.top();
        displaced.insert(displaced.end(), r.members.begin(),
                         r.members.end());
        ledger.release(r.cores);
        region.release(r.slots);
        maicc_assert(coresInFlight >= r.cores);
        coresInFlight -= r.cores;
        running.pop();
    }
    displaced.insert(displaced.end(), queue.begin(), queue.end());
    queue.clear();

    for (unsigned s = 0; s < region.totalNodes(); ++s) {
        if (!region.dead(s))
            region.markDead(s);
    }
    ledger.retire(ledger.freeCores());
    isDead = true;
    slowdowns.clear();
    timeline.push_back({now, 0});
    std::sort(displaced.begin(), displaced.end());
    checkInvariants();
    return displaced;
}

std::vector<uint64_t>
ShardEngine::loseCores(unsigned count, Cycles now)
{
    // Victims: the highest-index live serpentine slots, clamped to
    // what is left. Highest-index keeps the low end — where
    // first-fit carves — coalescible for as long as possible.
    std::vector<unsigned> victims;
    for (unsigned s = region.totalNodes();
         s-- > 0 && victims.size() < count;) {
        if (!region.dead(s))
            victims.push_back(s);
    }
    if (victims.size() == region.totalNodes() - region.deadNodes())
        return failStop(now);

    auto isVictim = [&](unsigned s) {
        return std::find(victims.begin(), victims.end(), s)
            != victims.end();
    };

    // Kill every batch occupying a victim slot; survivors keep
    // running untouched.
    std::vector<uint64_t> displaced;
    std::vector<Running> keep;
    while (!running.empty()) {
        const Running &r = running.top();
        bool hit = std::any_of(r.slots.begin(), r.slots.end(),
                               isVictim);
        if (hit) {
            displaced.insert(displaced.end(), r.members.begin(),
                             r.members.end());
            ledger.release(r.cores);
            region.release(r.slots);
            maicc_assert(coresInFlight >= r.cores);
            coresInFlight -= r.cores;
        } else {
            keep.push_back(running.top());
        }
        running.pop();
    }
    for (Running &r : keep)
        running.push(std::move(r));

    for (unsigned s : victims)
        region.markDead(s);
    ledger.retire(std::min(unsigned(victims.size()),
                           ledger.freeCores()));

    // Queued requests whose minimum region no longer fits any
    // possible run on this shard would wait forever — displace
    // them for the dispatcher to fail over.
    for (auto it = queue.begin(); it != queue.end();) {
        if (!canServe(minCores[requests[*it].model])) {
            displaced.push_back(*it);
            it = queue.erase(it);
        } else {
            ++it;
        }
    }

    timeline.push_back({now, ledger.used()});
    std::sort(displaced.begin(), displaced.end());
    checkInvariants();
    return displaced;
}

void
ShardEngine::pushSlowdown(Cycles from, Cycles until, double factor)
{
    slowdowns.push_back({from, until, factor});
}

double
ShardEngine::slowdownAt(Cycles now) const
{
    double f = 1.0;
    for (const Slowdown &w : slowdowns) {
        if (now >= w.from && now < w.until)
            f *= w.factor;
    }
    return f;
}

bool
ShardEngine::removeQueued(uint64_t id)
{
    auto it = std::find(queue.begin(), queue.end(), id);
    if (it == queue.end())
        return false;
    queue.erase(it);
    return true;
}

} // namespace maicc
