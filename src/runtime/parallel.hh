/**
 * @file
 * Deterministic parallel stepping engine for the many-core
 * simulation (DESIGN.md "Concurrency model").
 *
 * The simulator's unit of concurrency is the *shard*: a contiguous
 * slice of independent simulation objects (compute nodes of a node
 * group, output rows of a layer, models of a multi-DNN schedule).
 * A ThreadPool executes all shards of a step between two barriers;
 * mesh-shared state (NoC, LLC, DRAM, merged stats) is only touched
 * outside the parallel region, by the calling thread.
 *
 * Determinism contract: the shard decomposition is a pure function
 * of the item count (never of the thread count or of scheduling
 * order), every shard writes only shard-private state, and shard
 * results are merged in shard-index order at the barrier. Hence
 * the same seed and config produce bitwise-identical cycle counts,
 * stats, and output tensors at any `--threads=N`.
 */

#ifndef MAICC_RUNTIME_PARALLEL_HH
#define MAICC_RUNTIME_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace maicc
{

/** Contiguous half-open item range owned by one shard. */
struct ShardRange
{
    size_t begin = 0;
    size_t end = 0;

    size_t size() const { return end - begin; }
    bool empty() const { return begin >= end; }
};

/**
 * Split @p items into @p num_shards contiguous ranges (the first
 * `items % num_shards` shards get one extra item). Depends only on
 * its arguments — never on thread count — so the decomposition is
 * identical in serial and parallel runs.
 */
ShardRange shardRange(size_t items, size_t shard,
                      size_t num_shards);

/**
 * Shard count for @p items work items: enough shards that the pool
 * load-balances, few enough that per-shard merge cost stays
 * negligible. A pure function of the item count (see the
 * determinism contract above).
 */
size_t defaultShards(size_t items);

/**
 * A persistent pool of worker threads with a blocking fork-join
 * `run()`. With `threads() <= 1` every job executes inline on the
 * calling thread — the serial path is the same code.
 */
class ThreadPool
{
  public:
    /** @p threads total workers; 0 means hardware concurrency. */
    explicit ThreadPool(unsigned threads = 1);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threads() const { return numThreads; }

    /**
     * Execute `fn(job)` for every job in [0, jobs) and barrier:
     * returns only after all jobs finish. Jobs are claimed from an
     * atomic counter, so *which* thread runs a job is unspecified;
     * callers must keep per-job state disjoint and merge results
     * in job-index order after run() returns. The calling thread
     * participates. The first exception thrown by a job is
     * rethrown here after the barrier.
     */
    void run(size_t jobs, const std::function<void(size_t)> &fn);

    /**
     * Convenience: shard [0, items) with defaultShards()/
     * shardRange() and call `fn(shard_index, range)` per shard.
     */
    void forShards(size_t items,
                   const std::function<void(size_t, ShardRange)> &fn);

  private:
    void workerLoop();
    void runJobs();

    unsigned numThreads;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable cvStart; ///< wakes workers for an epoch
    std::condition_variable cvDone;  ///< wakes the caller at barrier
    const std::function<void(size_t)> *jobFn = nullptr;
    size_t jobCount = 0;
    size_t nextJob = 0;     ///< next unclaimed job index
    size_t jobsDone = 0;    ///< completed jobs this epoch
    uint64_t epoch = 0;     ///< bumped per run() to wake workers
    bool stopping = false;
    std::exception_ptr firstError;
};

} // namespace maicc

#endif // MAICC_RUNTIME_PARALLEL_HH
