/**
 * @file
 * Multi-chip sharded serving: N independent MAICC chips behind one
 * cross-chip dispatcher (ROADMAP "sharding" scaling axis; the
 * paper's §8 multi-DNN outlook taken past a single 210-core mesh).
 *
 * A ClusterSimulator owns `ServingConfig::chips` shards. Each shard
 * is a full, independent chip: its own CoreLedger budget,
 * RegionAllocator serpentine, waiting queue, and admission policy —
 * exactly the single-chip serving path, reused via the extracted
 * ShardEngine (shard.hh). Above the shards sits the dispatcher: at
 * every arrival it picks one shard (ShardPolicy, admission.hh) from
 * those that have the model registered (addModel's shard mask) and
 * waiting-room space, and the request lives there until it
 * completes. If no shard is eligible the arrival is rejected — the
 * cluster-level analogue of single-chip admission control.
 *
 * Service profiles come from one shared profiler (an inner
 * ServingSimulator): the shards are identical hardware, so a
 * (model, cores) profile is shard-independent and is simulated at
 * most once per cluster run, TimingResultCache memoization
 * included.
 *
 * Determinism contract (pinned by tests/runtime/test_cluster.cc):
 *
 *  - fixed-seed cluster runs are bitwise identical at any
 *    SystemConfig::numThreads and with the sim cache on or off —
 *    dispatch looks only at deterministic dispatcher state (never
 *    at cache occupancy: model-affinity warmth is tracked as "this
 *    shard dispatched this model before", which is seed-determined);
 *  - `--chips=1` is *byte-identical* in a --stats-json dump to the
 *    plain single-chip ServingSimulator path: attach() then
 *    registers only the inner simulator, under the legacy component
 *    name, and run() delegates to it outright.
 *
 * Event ordering across shards: completions before arrivals at
 * equal cycles (the single-chip tie-break, per shard), and
 * same-cycle completions on different shards retire in ascending
 * shard index — shards are independent after dispatch, so this
 * fixed order is a naming convention, not a coupling.
 *
 * Stats hierarchy (chips > 1): the cluster component carries the
 * aggregate (all ServingResult::dumpStats keys plus a `chips`
 * counter), with one child group per shard — `cluster.chip0` …
 * `cluster.chipN-1` — holding that shard's slice, and the shared
 * profiler under `cluster.profiler` (DESIGN.md §14).
 */

#ifndef MAICC_RUNTIME_CLUSTER_HH
#define MAICC_RUNTIME_CLUSTER_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "runtime/serving.hh"

namespace maicc
{

/** Outcome of one cluster run. */
struct ClusterResult
{
    /**
     * The cluster-wide view: every offered request (in arrival
     * order, RequestRecord::shard telling where each one ran),
     * aggregate percentiles/SLO attainment over all of them, the
     * merged used-core timeline, and utilization over chips ×
     * coreBudget.
     */
    ServingResult aggregate;

    /**
     * One slice per shard, ascending shard index: the shard's
     * dispatched requests, its own timeline and percentiles,
     * utilization over its own coreBudget. Every slice's endCycle
     * is the cluster-wide one (the shards share the clock).
     * Rejections belong to the dispatcher, not a shard, so they
     * appear only in the aggregate.
     */
    std::vector<ServingResult> shards;
};

/**
 * The sharded serving tier: ServingConfig::chips independent chip
 * shards behind a cross-chip dispatcher. See the file comment for
 * the model and the determinism contract. Register models (with an
 * optional shard mask), choose an arrival process, run(). Like
 * ServingSimulator, run() may be called repeatedly; each call
 * re-seeds from the config and starts every shard empty.
 */
class ClusterSimulator : public SimComponent
{
  public:
    explicit ClusterSimulator(ServingConfig cfg);

    /**
     * Register a model on the shards in @p shard_mask (bit i =
     * shard i; the default registers everywhere). The mask must
     * cover at least one of the configured chips. @return the
     * model index.
     */
    size_t addModel(ServedModel m, uint64_t shard_mask = ~0ull);

    /**
     * Load explicit arrivals for ArrivalProcess::Trace — the same
     * format ServingSimulator::loadTrace accepts. The cluster
     * serves the one coupled stream; dispatch spreads it over the
     * shards.
     */
    bool loadTrace(std::istream &in);
    bool loadTraceFile(const std::string &path);

    /** Simulate the whole request stream over every shard. */
    ClusterResult run();

    /** Drop cached profiling state; keep models and masks. */
    void reset() override;

    /** Forwarded to the shared profiler (serving.hh). */
    void setTimingCache(TimingResultCache *cache);

    /** The configured shard count (>= 1). */
    unsigned chips() const { return nChips; }

    /**
     * Register with @p ctx. With one chip this attaches *only* the
     * inner single-chip simulator, under @p single_name — the
     * legacy component layout, so a `--chips=1` stats dump is
     * byte-identical to the pre-cluster path. With more it attaches
     * the cluster under @p name with `chipK` and `profiler`
     * children (the file-comment hierarchy).
     */
    void attach(SimContext &ctx, const std::string &name = "cluster",
                const std::string &single_name = "serving");

  protected:
    /** Attaches the profiler and the per-shard stat groups. */
    void onAttach() override;

  private:
    void publishStats(const ClusterResult &out);

    ServingConfig cfg;
    unsigned nChips = 1;

    /**
     * The single-chip engine underneath: model registry, arrival
     * generation, and the shared (model, cores) profiler; with one
     * chip it also *is* the whole run() path.
     */
    ServingSimulator inner;

    std::vector<uint64_t> shardMasks; ///< per model, bit i = shard i

    /** Per-shard stat groups ("chip0" …), children of the cluster. */
    std::vector<std::unique_ptr<SimComponent>> chipStats;
};

} // namespace maicc

#endif // MAICC_RUNTIME_CLUSTER_HH
