/**
 * @file
 * The per-chip serving engine: one chip shard's event-loop state.
 *
 * PR 3–6 grew the single-chip serving loop (serving.cc) into an
 * admission path with pluggable policies, contiguous region
 * carving, batching, and self-checked ledger/region lock-step. The
 * cluster tier (cluster.hh) needs exactly that machinery N times
 * over — one independent (CoreLedger, RegionAllocator, waiting
 * queue, running set) per chip — so the loop's mutable state and
 * its admission/completion transitions live here, extracted
 * verbatim. ServingSimulator::run() drives one ShardEngine;
 * ClusterSimulator::run() drives N of them behind a cross-chip
 * dispatcher. The extraction is behavior-preserving: the
 * single-chip path performs the identical operations in the
 * identical order, which is what keeps `--chips=1` byte-identical
 * to the pre-cluster stats dump.
 *
 * A ShardEngine does not own request records or service profiles:
 * it mutates the shared per-run RequestRecord vector (each record
 * belongs to exactly one shard once dispatched) and pulls profiles
 * through a caller-supplied functor — in a cluster, every shard
 * shares one profiler, because the shards are identical hardware.
 */

#ifndef MAICC_RUNTIME_SHARD_HH
#define MAICC_RUNTIME_SHARD_HH

#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "mapping/allocation.hh"
#include "mapping/placement.hh"
#include "runtime/serving.hh"

namespace maicc
{

/**
 * One chip shard's discrete-event serving state and transitions.
 * The caller owns event *ordering* (which shard's completion or
 * which arrival happens next); the engine owns everything below
 * that: the waiting queue, policy-driven admission, contiguous
 * region carving, batching, and completion bookkeeping.
 */
class ShardEngine
{
  public:
    /** "No pending completion" sentinel for nextFinish(). */
    static constexpr Cycles kNever =
        std::numeric_limits<Cycles>::max();

    /**
     * Service-profile source: (model index, granted cores) → the
     * memoized profile. The reference stays valid for the duration
     * of the call that consumes it.
     */
    using ProfileFn =
        std::function<const ServiceProfile &(size_t, unsigned)>;

    /**
     * Build the shard from the run's @p cfg (budget, geometry,
     * policy, batching, selfCheck), the registered @p models and
     * their @p min_cores table, the run-wide @p requests vector the
     * engine annotates in place, and the @p profile source.
     * @p shard_index is stamped into every dispatched record.
     */
    ShardEngine(const ServingConfig &cfg,
                const std::vector<ServedModel> &models,
                const std::vector<unsigned> &min_cores,
                std::vector<RequestRecord> &requests,
                ProfileFn profile, unsigned shard_index = 0);

    /** Earliest running batch's finish cycle, or kNever. */
    Cycles nextFinish() const
    {
        return running.empty() ? kNever : running.top().finish;
    }

    /** True when nothing is running (the queue is then empty too —
     * admission at the last event drained or admitted it). */
    bool idle() const { return running.empty(); }

    /** True when an arrival would be rejected (waiting room full). */
    bool queueFull() const
    {
        return queue.size() >= cfg.queueCapacity;
    }

    /** Requests waiting for admission (running ones excluded). */
    size_t queueDepth() const { return queue.size(); }

    /** Cores not held by running batches (dispatcher load metric). */
    unsigned freeCores() const { return ledger.freeCores(); }

    /**
     * Dispatch request @p id to this shard: stamps the record's
     * shard index and queues it. Returns false — rejection — when
     * the waiting room is full (the caller books the rejection).
     */
    bool enqueue(uint64_t id);

    /**
     * Retire the earliest-finishing batch at @p now (its cores and
     * slots coalesce back). Caller must have checked nextFinish().
     */
    void complete(Cycles now);

    /**
     * Admit from the waiting queue until the policy yields nothing
     * admissible: snapshot the queue, let the policy pick, carve a
     * contiguous region (degrading to the minimum region under
     * fragmentation), collect the same-model batch, and schedule
     * its completion from the service profile. Asserts the
     * ledger/region lock-step afterwards when cfg.selfCheck is on.
     */
    void tryAdmit(Cycles now);

    /**
     * The used-cores time series recorded so far — one sample after
     * every admission/completion, starting at {0, 0}. Move it out
     * once the run is over.
     */
    std::vector<UtilizationSample> takeTimeline()
    {
        return std::move(timeline);
    }

    /**
     * Smallest isolated service latency over every (model, cores)
     * profile this shard admitted with; 0 when nothing was
     * admitted.
     */
    Cycles minServiceLatencySeen() const
    {
        return minService == kNever ? 0 : minService;
    }

    // ------------------------------------------------------------
    // Fault transitions (DESIGN.md §16). Only the recovery loop
    // (recovery.cc) calls these; the fault-free serving/cluster
    // paths never touch them, which is what keeps those paths
    // byte-identical to the pre-fault build.
    // ------------------------------------------------------------

    /** True after a chip-fail-stop killed this shard. */
    bool dead() const { return isDead; }

    /**
     * True when a request needing @p min_cores can ever be served
     * here again: the shard is alive, the budget covers it, and a
     * contiguous non-dead run that long still exists.
     */
    bool
    canServe(unsigned min_cores) const
    {
        return !isDead && min_cores <= ledger.total()
            && min_cores <= region.longestPossibleRun();
    }

    /**
     * Chip fail-stop at @p now: every running batch is killed and
     * every queued request displaced; cores and slots are retired
     * permanently and the shard reports dead() from here on. The
     * returned ids (ascending) are the displaced requests the
     * dispatcher must fail over to surviving shards.
     */
    std::vector<uint64_t> failStop(Cycles now);

    /**
     * Permanently lose @p count cores at @p now (clamped to the
     * slots still alive): the highest-index live serpentine slots
     * die, batches occupying a victim are killed (their members
     * are displaced), the region re-coalesces around the dead
     * slots, and the core budget shrinks. Queued requests whose
     * minimum region no longer fits any possible run are displaced
     * too. Returns the displaced ids, ascending.
     */
    std::vector<uint64_t> loseCores(unsigned count, Cycles now);

    /**
     * Open a transient service-time slowdown window [from, until):
     * admissions inside it scale the service profile by @p factor
     * (DRAM outage, NoC degradation). Windows stack
     * multiplicatively.
     */
    void pushSlowdown(Cycles from, Cycles until, double factor);

    /** Remove request @p id from the waiting queue (timeout /
     * shed). False when it is not queued here. */
    bool removeQueued(uint64_t id);

  private:
    /** One admitted batch occupying a region until its last
     * request finishes. */
    struct Running
    {
        Cycles finish = 0;    ///< last batch member's finish
        uint64_t firstId = 0; ///< deterministic tie-break
        unsigned cores = 0;
        std::vector<unsigned> slots;
        std::vector<uint64_t> members; ///< batch request ids

        bool
        operator>(const Running &o) const
        {
            return finish != o.finish ? finish > o.finish
                                      : firstId > o.firstId;
        }
    };

    /** One active slowdown window (see pushSlowdown). */
    struct Slowdown
    {
        Cycles from = 0;
        Cycles until = 0;
        double factor = 1.0;
    };

    /** Product of the windows covering @p now (1.0 when none). */
    double slowdownAt(Cycles now) const;

    void checkInvariants() const;

    const ServingConfig &cfg;
    const std::vector<ServedModel> &models;
    const std::vector<unsigned> &minCores;
    std::vector<RequestRecord> &requests;
    ProfileFn profileFn;
    unsigned shardIndex = 0;

    CoreLedger ledger;
    RegionAllocator region;
    std::deque<uint64_t> queue;
    std::priority_queue<Running, std::vector<Running>,
                        std::greater<Running>>
        running;
    std::unique_ptr<AdmissionPolicy> policy;
    unsigned coresInFlight = 0;
    std::vector<UtilizationSample> timeline;
    Cycles minService = kNever;

    // Fault state — all of it stays at the defaults on the
    // fault-free paths.
    bool isDead = false;
    std::vector<Slowdown> slowdowns;
};

} // namespace maicc

#endif // MAICC_RUNTIME_SHARD_HH
