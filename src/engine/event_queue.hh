/**
 * @file
 * The shared discrete-event kernel (DESIGN.md §15). One EventQueue
 * drives one simulation clock: components schedule wake-up events
 * at absolute cycles and the pump executes them in deterministic
 * (cycle, priority, sequence) order — cycle first, then the
 * caller-chosen priority lane (e.g. "completions before arrivals",
 * "shard 0 before shard 1"), then insertion order as the final
 * tie-break. Execution is strictly single-threaded and the
 * ordering key is a pure function of the schedule() call stream,
 * so a run is bitwise reproducible regardless of host load,
 * pointer values, or hash seeds.
 *
 * Skip-ahead falls out of the representation: between events no
 * simulated time is modeled at all, so an idle stretch costs
 * nothing (contrast the legacy ticked loops, which advance every
 * router/channel every cycle). Components that cannot know their
 * next interesting cycle exactly may schedule a conservative
 * earlier wake-up and re-check state when it fires; stale wake-ups
 * must be no-ops (the "stale events are harmless" rule in §15).
 */

#ifndef MAICC_ENGINE_EVENT_QUEUE_HH
#define MAICC_ENGINE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "engine/engine_kind.hh"

namespace maicc
{

/**
 * Deterministic discrete-event queue. See the file comment for the
 * ordering contract. Not thread-safe: one queue belongs to one
 * simulation loop on one thread.
 */
class EventQueue
{
  public:
    /** Callback invoked with the event's cycle. */
    using Handler = std::function<void(Cycles)>;

    /** "No event" sentinel returned by nextAt(). */
    static constexpr Cycles kNever = ~Cycles(0);

    /**
     * Schedule @p fn at absolute cycle @p when. Events at one
     * cycle run in ascending @p priority, then schedule() order.
     * Scheduling at or before the cycle currently being executed
     * is allowed (the event runs before the pump returns to an
     * older cycle only if none exists — i.e. it is simply ordered
     * by its key like any other event); scheduling strictly in the
     * past of an already-executed event is a contract violation
     * the caller must avoid.
     */
    void
    schedule(Cycles when, int priority, Handler fn)
    {
        heap.push(Event{when, priority, nextSeq++, std::move(fn)});
    }

    bool empty() const { return heap.empty(); }
    size_t size() const { return heap.size(); }

    /** Cycle of the next event, or kNever when empty. */
    Cycles
    nextAt() const
    {
        return heap.empty() ? kNever : heap.top().when;
    }

    /** Cycle of the most recently executed event (0 initially). */
    Cycles now() const { return current; }

    /** Events executed so far (for budget checks / stats). */
    uint64_t eventsRun() const { return executed; }

    /**
     * Pop and run the single next event. No-op on an empty queue.
     * @return true when an event ran.
     */
    bool step();

    /**
     * Run events while the next one is at or before @p limit.
     * @return events executed.
     */
    uint64_t runUntil(Cycles limit);

    /** Run until the queue is empty. @return events executed. */
    uint64_t drain();

    /** Drop all pending events; now()/eventsRun() keep counting. */
    void
    clear()
    {
        heap = Heap{};
    }

  private:
    struct Event
    {
        Cycles when;
        int priority;
        uint64_t seq;
        Handler fn;
    };

    /** Min-first over (when, priority, seq). */
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    using Heap =
        std::priority_queue<Event, std::vector<Event>, Later>;

    Heap heap;
    uint64_t nextSeq = 0;
    uint64_t executed = 0;
    Cycles current = 0;
};

} // namespace maicc

#endif // MAICC_ENGINE_EVENT_QUEUE_HH
