/**
 * @file
 * The simulation-engine selector shared by every time-stepped
 * model (NoC, DRAM, core timing, system streaming loop, serving /
 * cluster event loops): `Event` (the default) drives each model
 * through skip-ahead wake-up scheduling on the shared event kernel
 * (engine/event_queue.hh), `Ticked` keeps the legacy
 * advance-everything-every-cycle loops compilable for differential
 * testing. Both engines produce byte-identical stats and cycle
 * counts by contract (DESIGN.md §15); the knob is host-side only,
 * like numThreads and simCacheEntries.
 *
 * Selection: `--engine=ticked|event` on every bench and example,
 * `system.engine` in a JSON config, or the MAICC_ENGINE
 * environment variable (lowest precedence; it also steers the
 * default-constructed configs the unit tests use, which is how the
 * `--engine=ticked` CI leg runs the whole tier-1 suite on the
 * legacy path).
 */

#ifndef MAICC_ENGINE_ENGINE_KIND_HH
#define MAICC_ENGINE_ENGINE_KIND_HH

#include <cstdlib>
#include <string>

namespace maicc
{

/** Which inner-loop implementation a model runs on. */
enum class EngineKind
{
    Ticked, ///< legacy: advance every component every cycle
    Event,  ///< skip-ahead wake-up scheduling (the default)
};

/** Canonical flag spelling ("ticked" / "event"). */
inline const char *
engineName(EngineKind k)
{
    return k == EngineKind::Ticked ? "ticked" : "event";
}

/** Parse a flag spelling; @return false on anything else. */
inline bool
parseEngine(const std::string &s, EngineKind &out)
{
    if (s == "ticked") {
        out = EngineKind::Ticked;
        return true;
    }
    if (s == "event") {
        out = EngineKind::Event;
        return true;
    }
    return false;
}

/**
 * The process-wide default engine: Event unless the MAICC_ENGINE
 * environment variable names a valid engine. Read once; every
 * default-constructed config (NocConfig, CoreConfig, SystemConfig)
 * starts from this value, so a `MAICC_ENGINE=ticked ctest` run
 * exercises the legacy path end to end without touching any test.
 */
inline EngineKind
defaultEngineKind()
{
    static const EngineKind kind = [] {
        EngineKind k = EngineKind::Event;
        if (const char *env = std::getenv("MAICC_ENGINE"))
            parseEngine(env, k);
        return k;
    }();
    return kind;
}

} // namespace maicc

#endif // MAICC_ENGINE_ENGINE_KIND_HH
