#include "engine/event_queue.hh"

#include <utility>

namespace maicc
{

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    // Move the handler out before popping: the handler may
    // schedule new events, which mutates the heap.
    Event ev = std::move(const_cast<Event &>(heap.top()));
    heap.pop();
    current = ev.when;
    ++executed;
    ev.fn(ev.when);
    return true;
}

uint64_t
EventQueue::runUntil(Cycles limit)
{
    uint64_t n = 0;
    while (!heap.empty() && heap.top().when <= limit) {
        step();
        ++n;
    }
    return n;
}

uint64_t
EventQueue::drain()
{
    uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

} // namespace maicc
