/**
 * @file
 * The computing memory (CMem) of a MAICC node (paper §3.2).
 *
 * A 16 KB CMem is partitioned into eight slender 2 KB slices of
 * 64 word-lines x 256 bit-lines. Slice 0 is built from 8T cells and
 * supports both conventional byte addressing (vertical, used to
 * transpose data at runtime — Fig. 5) and row indexing; slices 1-7
 * are compute slices that only support row indexing and the
 * bit-serial primitives.
 *
 * The headline primitive is the hardware vector MAC (Fig. 4(b)):
 * for every bit-row pair (i, j) of two transposed n-bit vectors the
 * array senses the per-bit-line ANDs, an adder tree sums the 256
 * bit-lines, and the partial sum is shifted by (i + j) and
 * accumulated into the Res register. The full MAC takes n^2 cycles
 * and produces a scalar that is written back to a core register,
 * eliminating Neural Cache's reduction step.
 */

#ifndef MAICC_CMEM_CMEM_HH
#define MAICC_CMEM_CMEM_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/sim_component.hh"
#include "common/types.hh"
#include "sram/sram_array.hh"

namespace maicc
{

/** Geometry and timing parameters of one CMem (paper defaults). */
struct CMemConfig
{
    unsigned numSlices = 8;     ///< slice 0 + 7 compute slices
    unsigned rowsPerSlice = 64; ///< word-lines per slice
    // 256 bit-lines fixed by Row256.

    /** Bytes of storage: slices * rows * 256 / 8. */
    unsigned
    totalBytes() const
    {
        return numSlices * rowsPerSlice * Row256::numBits / 8;
    }
};

/** Dynamic-event counts a CMem accumulates; consumed by src/energy. */
struct CMemEvents
{
    uint64_t verticalWrites = 0;  ///< byte-equivalent writes, slice 0
    uint64_t verticalReads = 0;   ///< byte-equivalent reads, slice 0
    uint64_t macOps = 0;          ///< MAC.C instructions
    uint64_t macActivations = 0;  ///< dual word-line activations
    uint64_t moveRows = 0;        ///< rows moved by Move.C
    uint64_t setRows = 0;         ///< SetRow.C operations
    uint64_t shiftRows = 0;       ///< ShiftRow.C operations
    uint64_t rowLoads = 0;        ///< LoadRow.RC rows received
    uint64_t rowStores = 0;       ///< StoreRow.RC rows sent

    CMemEvents &operator+=(const CMemEvents &o);
};

/**
 * One CMem slice: a 64x256 SRAM array plus the peripheral logic of
 * Fig. 8 (sense amplifiers, masked adder tree, shifter, Res
 * register) and the per-slice 8-bit mask CSR, each bit of which
 * gates a group of 32 bit-lines.
 */
class CMemSlice
{
  public:
    explicit CMemSlice(const CMemConfig &cfg = CMemConfig{});

    /** The mask CSR: bit g enables bit-lines 32g..32g+31. */
    void setMask(uint8_t mask) { maskCsr = mask; }
    uint8_t mask() const { return maskCsr; }

    /**
     * Bit-serial hardware MAC of two transposed n-bit vectors held
     * in this slice at word-lines [base_a, base_a+n) and
     * [base_b, base_b+n). Masked bit-lines do not contribute.
     *
     * @param is_signed two's-complement semantics (the sign-bit rows
     *        carry negative place weight).
     * @return the accumulated Res register value.
     */
    int64_t mac(unsigned base_a, unsigned base_b, unsigned n,
                bool is_signed, CMemEvents &ev) const;

    /** SetRow.C: force every bit of a row to @p value. */
    void setRow(unsigned row, bool value, CMemEvents &ev);

    /** ShiftRow.C: shift a row by @p chunks 32-bit groups. */
    void shiftRow(unsigned row, int chunks, CMemEvents &ev);

    /** Raw row access (used by Move.C / LoadRow.RC / StoreRow.RC). */
    const Row256 &readRow(unsigned row) const;
    void writeRow(unsigned row, const Row256 &value);

    SramArray &array() { return sram; }
    const SramArray &array() const { return sram; }

  private:
    Row256 maskRow() const;

    SramArray sram;
    uint8_t maskCsr = 0xFF;
};

/**
 * A full CMem: slice 0 (transpose/cache) + compute slices, with the
 * instruction-level operations of Table 2 and their cycle costs.
 */
class CMem : public SimComponent
{
  public:
    explicit CMem(const CMemConfig &cfg = CMemConfig{});

    const CMemConfig &config() const { return cfg; }

    // ------------------------------------------------------------
    // Slice 0 vertical (byte) addressing — Fig. 5. A byte at address
    // b occupies bit-lines column (b % 256), word-lines
    // (b / 256) * 8 .. +7 (LSB in the lowest row). Conventional
    // load/store instructions see this window at 0x1000..0x17FF.
    // ------------------------------------------------------------

    /** Byte capacity of the vertical window (2048). */
    unsigned verticalBytes() const;

    void storeByte(unsigned addr, uint8_t value);
    uint8_t loadByte(unsigned addr) const;
    void storeWord(unsigned addr, uint32_t value);
    uint32_t loadWord(unsigned addr) const;

    // ------------------------------------------------------------
    // Extended-ISA operations (Table 2).
    // ------------------------------------------------------------

    /** MAC.C within one slice; returns the Res register value. */
    int64_t macc(unsigned slice, unsigned base_a, unsigned base_b,
                 unsigned n, bool is_signed = true);

    /** Move.C: copy an n-bit vector (n rows) between slices. */
    void move(unsigned src_slice, unsigned src_row, unsigned dst_slice,
              unsigned dst_row, unsigned n);

    /** SetRow.C. */
    void setRow(unsigned slice, unsigned row, bool value);

    /** ShiftRow.C. */
    void shiftRow(unsigned slice, unsigned row, int chunks);

    /** Architectural row read, e.g. the payload of StoreRow.RC. */
    Row256 readRowRemote(unsigned slice, unsigned row);

    /** Architectural row write, e.g. on LoadRow.RC arrival. */
    void writeRowRemote(unsigned slice, unsigned row,
                        const Row256 &value);

    /** Per-slice mask CSR accessors. */
    void setMask(unsigned slice, uint8_t mask);
    uint8_t mask(unsigned slice) const;

    // ------------------------------------------------------------
    // Cycle costs (Table 2). Static so schedulers can query them.
    // ------------------------------------------------------------

    static Cycles maccCycles(unsigned n) { return Cycles(n) * n; }
    static Cycles moveCycles(unsigned n) { return n; }
    static Cycles setRowCycles() { return 1; }
    static Cycles shiftRowCycles() { return 2; }
    static Cycles rowXferCycles() { return 1; }

    CMemSlice &slice(unsigned idx);
    const CMemSlice &slice(unsigned idx) const;

    const CMemEvents &events() const { return ev; }
    void resetEvents() { ev = CMemEvents{}; }

    /** Zero every slice's storage, masks, and the event counts. */
    void reset() override;

    /** Publish the CMemEvents counts into stats(). */
    void recordStats() override;

    // ------------------------------------------------------------
    // Test/convenience helpers (not architectural).
    // ------------------------------------------------------------

    /** Place an n-bit transposed vector in a slice directly. */
    void pokeVector(unsigned slice, unsigned base_row, unsigned n,
                    std::span<const int32_t> values);

    /** Read an n-bit transposed vector back. */
    std::vector<int32_t> peekVector(unsigned slice, unsigned base_row,
                                    unsigned n, unsigned count,
                                    bool is_signed) const;

  private:
    CMemConfig cfg;
    std::vector<CMemSlice> slices;
    mutable CMemEvents ev;
};

} // namespace maicc

#endif // MAICC_CMEM_CMEM_HH
