#include "cmem/cmem.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "sram/transpose.hh"

namespace maicc
{

CMemEvents &
CMemEvents::operator+=(const CMemEvents &o)
{
    verticalWrites += o.verticalWrites;
    verticalReads += o.verticalReads;
    macOps += o.macOps;
    macActivations += o.macActivations;
    moveRows += o.moveRows;
    setRows += o.setRows;
    shiftRows += o.shiftRows;
    rowLoads += o.rowLoads;
    rowStores += o.rowStores;
    return *this;
}

CMemSlice::CMemSlice(const CMemConfig &cfg) : sram(cfg.rowsPerSlice)
{
}

Row256
CMemSlice::maskRow() const
{
    Row256 m;
    for (unsigned g = 0; g < 8; ++g) {
        if ((maskCsr >> g) & 1)
            m.setGroup32(g, 0xFFFFFFFFu);
    }
    return m;
}

int64_t
CMemSlice::mac(unsigned base_a, unsigned base_b, unsigned n,
               bool is_signed, CMemEvents &ev) const
{
    maicc_assert(n >= 1 && n <= 32);
    maicc_assert(base_a + n <= sram.rows());
    maicc_assert(base_b + n <= sram.rows());
    // The two operand vectors must occupy disjoint word-lines:
    // bit-line computing activates one row of each per cycle.
    maicc_assert(base_a + n <= base_b || base_b + n <= base_a);

    Row256 enabled = maskRow();
    int64_t res = 0;
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
            BitlineReadout bl =
                sram.computeRows(base_a + i, base_b + j);
            unsigned psum = (bl.andBits & enabled).popcount();
            // Two's complement: the top bit-row of each operand
            // carries weight -2^(n-1); the product term's sign is
            // the product of the operand-row signs.
            int sign = 1;
            if (is_signed) {
                if (i == n - 1)
                    sign = -sign;
                if (j == n - 1)
                    sign = -sign;
            }
            res += static_cast<int64_t>(sign)
                * (static_cast<int64_t>(psum) << (i + j));
        }
    }
    ev.macOps += 1;
    ev.macActivations += static_cast<uint64_t>(n) * n;
    return res;
}

void
CMemSlice::setRow(unsigned row, bool value, CMemEvents &ev)
{
    Row256 r;
    r.fill(value);
    sram.writeRow(row, r);
    ev.setRows += 1;
}

void
CMemSlice::shiftRow(unsigned row, int chunks, CMemEvents &ev)
{
    Row256 r = sram.readRow(row);
    sram.writeRow(row, r.shifted32(chunks));
    ev.shiftRows += 1;
}

const Row256 &
CMemSlice::readRow(unsigned row) const
{
    return sram.readRow(row);
}

void
CMemSlice::writeRow(unsigned row, const Row256 &value)
{
    sram.writeRow(row, value);
}

CMem::CMem(const CMemConfig &config) : SimComponent("cmem"), cfg(config)
{
    maicc_assert(cfg.numSlices >= 1);
    slices.reserve(cfg.numSlices);
    for (unsigned i = 0; i < cfg.numSlices; ++i)
        slices.emplace_back(cfg);
}

void
CMem::reset()
{
    slices.clear();
    for (unsigned i = 0; i < cfg.numSlices; ++i)
        slices.emplace_back(cfg);
    ev = CMemEvents{};
    SimComponent::reset();
}

void
CMem::recordStats()
{
    auto publish = [this](const char *name, uint64_t v) {
        auto &c = stats().counter(name);
        c.reset();
        c.inc(v);
    };
    publish("verticalWrites", ev.verticalWrites);
    publish("verticalReads", ev.verticalReads);
    publish("macOps", ev.macOps);
    publish("macActivations", ev.macActivations);
    publish("moveRows", ev.moveRows);
    publish("setRows", ev.setRows);
    publish("shiftRows", ev.shiftRows);
    publish("rowLoads", ev.rowLoads);
    publish("rowStores", ev.rowStores);
}

unsigned
CMem::verticalBytes() const
{
    return cfg.rowsPerSlice * Row256::numBits / 8;
}

void
CMem::storeByte(unsigned addr, uint8_t value)
{
    maicc_assert(addr < verticalBytes());
    unsigned col = addr % Row256::numBits;
    unsigned base_row = (addr / Row256::numBits) * 8;
    SramArray &arr = slices[0].array();
    for (unsigned bit = 0; bit < 8; ++bit) {
        Row256 row = arr.readRow(base_row + bit);
        row.set(col, (value >> bit) & 1);
        arr.writeRow(base_row + bit, row);
    }
    ev.verticalWrites += 1;
}

uint8_t
CMem::loadByte(unsigned addr) const
{
    maicc_assert(addr < verticalBytes());
    unsigned col = addr % Row256::numBits;
    unsigned base_row = (addr / Row256::numBits) * 8;
    const SramArray &arr = slices[0].array();
    uint8_t value = 0;
    for (unsigned bit = 0; bit < 8; ++bit) {
        if (arr.readRow(base_row + bit).get(col))
            value |= 1u << bit;
    }
    ev.verticalReads += 1;
    return value;
}

void
CMem::storeWord(unsigned addr, uint32_t value)
{
    for (unsigned b = 0; b < 4; ++b)
        storeByte(addr + b, static_cast<uint8_t>(value >> (8 * b)));
}

uint32_t
CMem::loadWord(unsigned addr) const
{
    uint32_t value = 0;
    for (unsigned b = 0; b < 4; ++b)
        value |= static_cast<uint32_t>(loadByte(addr + b)) << (8 * b);
    return value;
}

int64_t
CMem::macc(unsigned slice_idx, unsigned base_a, unsigned base_b,
           unsigned n, bool is_signed)
{
    return slice(slice_idx).mac(base_a, base_b, n, is_signed, ev);
}

void
CMem::move(unsigned src_slice, unsigned src_row, unsigned dst_slice,
           unsigned dst_row, unsigned n)
{
    CMemSlice &src = slice(src_slice);
    CMemSlice &dst = slice(dst_slice);
    maicc_assert(src_row + n <= cfg.rowsPerSlice);
    maicc_assert(dst_row + n <= cfg.rowsPerSlice);
    for (unsigned i = 0; i < n; ++i)
        dst.writeRow(dst_row + i, src.readRow(src_row + i));
    ev.moveRows += n;
}

void
CMem::setRow(unsigned slice_idx, unsigned row, bool value)
{
    slice(slice_idx).setRow(row, value, ev);
}

void
CMem::shiftRow(unsigned slice_idx, unsigned row, int chunks)
{
    slice(slice_idx).shiftRow(row, chunks, ev);
}

Row256
CMem::readRowRemote(unsigned slice_idx, unsigned row)
{
    ev.rowStores += 1;
    return slice(slice_idx).readRow(row);
}

void
CMem::writeRowRemote(unsigned slice_idx, unsigned row,
                     const Row256 &value)
{
    ev.rowLoads += 1;
    slice(slice_idx).writeRow(row, value);
}

void
CMem::setMask(unsigned slice_idx, uint8_t mask)
{
    slice(slice_idx).setMask(mask);
}

uint8_t
CMem::mask(unsigned slice_idx) const
{
    return slice(slice_idx).mask();
}

CMemSlice &
CMem::slice(unsigned idx)
{
    maicc_assert(idx < slices.size());
    return slices[idx];
}

const CMemSlice &
CMem::slice(unsigned idx) const
{
    maicc_assert(idx < slices.size());
    return slices[idx];
}

void
CMem::pokeVector(unsigned slice_idx, unsigned base_row, unsigned n,
                 std::span<const int32_t> values)
{
    writeTransposed(slice(slice_idx).array(), base_row, n, values);
}

std::vector<int32_t>
CMem::peekVector(unsigned slice_idx, unsigned base_row, unsigned n,
                 unsigned count, bool is_signed) const
{
    return readTransposed(slice(slice_idx).array(), base_row, n,
                          count, is_signed);
}

} // namespace maicc
