#include "check/invariants.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>

namespace maicc
{
namespace check
{

namespace
{

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof(buf), format, ap);
    va_end(ap);
    return buf;
}

} // namespace

void
CheckResult::add(const std::string &rule, const std::string &detail)
{
    size_t count = 0;
    for (const Violation &v : violations) {
        if (v.rule == rule)
            ++count;
    }
    if (count >= kMaxPerRule)
        return;
    if (count + 1 == kMaxPerRule) {
        violations.push_back(
            {rule, detail + " (further " + rule
                       + " violations suppressed)"});
        return;
    }
    violations.push_back({rule, detail});
}

void
CheckResult::merge(const CheckResult &other)
{
    for (const Violation &v : other.violations)
        add(v.rule, v.detail);
}

bool
CheckResult::has(const std::string &rule) const
{
    for (const Violation &v : violations) {
        if (v.rule == rule)
            return true;
    }
    return false;
}

std::string
CheckResult::summary() const
{
    std::ostringstream os;
    for (const Violation &v : violations)
        os << v.rule << ": " << v.detail << "\n";
    return os.str();
}

CheckResult
checkInstTrace(const std::vector<trace::InstRecord> &insts,
               const CoreCheckParams &params)
{
    CheckResult res;

    // Newest bypass-ready time per architectural register, and the
    // seq of the instruction that set it (for reporting).
    Cycles regReady[32] = {};
    uint64_t regWriter[32] = {};
    bool regWritten[32] = {};

    // Write-backs per cycle (only instructions with a destination
    // consume a register-file port).
    std::map<Cycles, unsigned> wbCount;

    // Per-slice array occupancy front.
    std::unordered_map<unsigned, Cycles> sliceFreeAt;
    std::unordered_map<unsigned, uint64_t> sliceLastSeq;

    bool have_prev = false;
    Cycles prev_issue = 0;
    uint64_t prev_seq = 0;

    for (const trace::InstRecord &r : insts) {
        // inorder-issue: one instruction per cycle, in order.
        if (have_prev && r.issue <= prev_issue) {
            res.add("inorder-issue",
                    fmt("inst %llu (pc 0x%x) issues at %llu, not "
                        "after inst %llu at %llu",
                        (unsigned long long)r.seq, r.pc,
                        (unsigned long long)r.issue,
                        (unsigned long long)prev_seq,
                        (unsigned long long)prev_issue));
        }
        have_prev = true;
        prev_issue = r.issue;
        prev_seq = r.seq;

        // raw-order: operands must be bypass-ready at issue.
        const struct
        {
            bool reads;
            uint8_t reg;
        } srcs[2] = {{r.readsRs1, r.rs1}, {r.readsRs2, r.rs2}};
        for (const auto &s : srcs) {
            if (!s.reads || s.reg == 0 || !regWritten[s.reg])
                continue;
            if (r.issue < regReady[s.reg]) {
                res.add(
                    "raw-order",
                    fmt("inst %llu (pc 0x%x) reads x%u at %llu "
                        "before producer inst %llu is ready at %llu",
                        (unsigned long long)r.seq, r.pc, s.reg,
                        (unsigned long long)r.issue,
                        (unsigned long long)regWriter[s.reg],
                        (unsigned long long)regReady[s.reg]));
            }
        }
        if (r.writesRd && r.rd != 0) {
            regReady[r.rd] = r.regReadyAt;
            regWriter[r.rd] = r.seq;
            regWritten[r.rd] = true;
        }

        if (r.writesRd)
            ++wbCount[r.wb];

        // slice-overlap: array occupancies per slice are disjoint
        // and dispatched in program order.
        unsigned slices[2];
        size_t num_slices = 0;
        if (r.usesSliceA)
            slices[num_slices++] = r.sliceA;
        if (r.usesSliceB && (!r.usesSliceA || r.sliceB != r.sliceA))
            slices[num_slices++] = r.sliceB;
        for (size_t i = 0; i < num_slices; ++i) {
            unsigned s = slices[i];
            auto it = sliceFreeAt.find(s);
            if (it != sliceFreeAt.end() && r.dispatch < it->second) {
                res.add(
                    "slice-overlap",
                    fmt("inst %llu (pc 0x%x) dispatches on slice "
                        "%u at %llu while inst %llu occupies it "
                        "until %llu",
                        (unsigned long long)r.seq, r.pc, s,
                        (unsigned long long)r.dispatch,
                        (unsigned long long)sliceLastSeq[s],
                        (unsigned long long)it->second));
            }
            sliceFreeAt[s] = r.dispatch + r.busy;
            sliceLastSeq[s] = r.seq;
        }

        // cycle-bound: the run's cycle count covers every event.
        if (params.totalCycles) {
            Cycles last = std::max(
                {r.wb, r.done, r.regReadyAt, r.dispatch + r.busy});
            if (last > params.totalCycles) {
                res.add("cycle-bound",
                        fmt("inst %llu (pc 0x%x) has an event at "
                            "%llu past the reported total of %llu",
                            (unsigned long long)r.seq, r.pc,
                            (unsigned long long)last,
                            (unsigned long long)
                                params.totalCycles));
            }
        }
    }

    // wb-ports: register-file write ports are oversubscribed.
    for (const auto &[cyc, n] : wbCount) {
        if (n > params.wbPorts) {
            res.add("wb-ports",
                    fmt("%u write-backs in cycle %llu with %u "
                        "port(s)",
                        n, (unsigned long long)cyc,
                        params.wbPorts));
        }
    }

    return res;
}

CheckResult
checkNocTrace(const trace::TraceSink &sink,
              const NocCheckParams &params)
{
    CheckResult res;

    std::unordered_map<uint64_t, trace::PacketRecord> pktById;
    for (const trace::PacketRecord &p : sink.packets)
        pktById.emplace(p.id, p);

    auto coordOf = [&](NodeId n) {
        return NodeCoord{n % params.width, n / params.width};
    };
    auto hopsOf = [&](NodeId a, NodeId b) {
        NodeCoord ca = coordOf(a), cb = coordOf(b);
        return unsigned(std::abs(ca.x - cb.x)
                        + std::abs(ca.y - cb.y));
    };
    // Input queue fed by output port @p out of router @p at;
    // returns false for the local/eject port (no downstream queue).
    auto downstreamOf = [&](NodeId at, int out, NodeId &next,
                            int &in) {
        NodeCoord c = coordOf(at);
        switch (out) {
          case trace::kDirEast:
            next = c.y * params.width + (c.x + 1);
            in = trace::kDirWest;
            return true;
          case trace::kDirWest:
            next = c.y * params.width + (c.x - 1);
            in = trace::kDirEast;
            return true;
          case trace::kDirSouth:
            next = (c.y + 1) * params.width + c.x;
            in = trace::kDirNorth;
            return true;
          case trace::kDirNorth:
            next = (c.y - 1) * params.width + c.x;
            in = trace::kDirSouth;
            return true;
          default:
            return false;
        }
    };

    // Per-packet flit accounting.
    struct PacketFlow
    {
        uint32_t injected = 0;
        uint32_t injectHeads = 0;
        uint32_t injectTails = 0;
        uint32_t ejected = 0;
        uint32_t grants = 0;
    };
    std::unordered_map<uint64_t, PacketFlow> flow;

    // Link-bandwidth accounting: events per (cycle, router, port).
    using PortKey = std::tuple<Cycles, NodeId, int>;
    std::map<PortKey, unsigned> grantsPerOut;
    std::map<PortKey, unsigned> departsPerIn;
    std::map<std::pair<Cycles, NodeId>, unsigned> injectsPerNode;

    // Queue occupancy re-simulation: per input queue, a list of
    // (cycle, is_arrival) events. Departures precede arrivals
    // within a cycle, matching the model's phase order.
    struct QueueEvent
    {
        Cycles cycle;
        bool arrival;
    };
    std::map<std::pair<NodeId, int>, std::vector<QueueEvent>>
        queueEvents;

    // Wormhole contiguity: grants per output port in cycle order.
    struct PortGrant
    {
        Cycles cycle;
        uint64_t packetId;
        bool head;
        bool tail;
    };
    std::map<std::pair<NodeId, int>, std::vector<PortGrant>>
        portGrants;

    for (const trace::FlitRecord &f : sink.flits) {
        if (!pktById.count(f.packetId)) {
            res.add("flit-conservation",
                    fmt("flit at router %d cycle %llu belongs to "
                        "unknown packet %llu",
                        f.router, (unsigned long long)f.cycle,
                        (unsigned long long)f.packetId));
            continue;
        }
        PacketFlow &pf = flow[f.packetId];

        if (params.totalCycles && f.cycle > params.totalCycles) {
            res.add("cycle-bound",
                    fmt("flit of packet %llu at router %d stamped "
                        "%llu past the final cycle %llu",
                        (unsigned long long)f.packetId, f.router,
                        (unsigned long long)f.cycle,
                        (unsigned long long)params.totalCycles));
        }

        if (f.inDir == trace::kDirInject) {
            // Injection into the source router's local queue.
            ++pf.injected;
            if (f.head)
                ++pf.injectHeads;
            if (f.tail)
                ++pf.injectTails;
            ++injectsPerNode[{f.cycle, f.router}];
            queueEvents[{f.router, trace::kDirLocal}].push_back(
                {f.cycle, true});
        } else {
            // A switch grant: departure from the input queue, and
            // an arrival downstream unless this is an ejection.
            ++pf.grants;
            ++grantsPerOut[{f.cycle, f.router, f.outDir}];
            ++departsPerIn[{f.cycle, f.router, f.inDir}];
            queueEvents[{f.router, f.inDir}].push_back(
                {f.cycle, false});
            NodeId next;
            int in;
            if (downstreamOf(f.router, f.outDir, next, in)) {
                queueEvents[{next, in}].push_back({f.cycle, true});
            } else {
                ++pf.ejected;
                NodeId dst = pktById[f.packetId].dst;
                if (f.router != dst) {
                    res.add("flit-conservation",
                            fmt("packet %llu (dst %d) ejected a "
                                "flit at router %d",
                                (unsigned long long)f.packetId,
                                dst, f.router));
                }
            }
        }
    }

    // link-bandwidth: one grant per output port, one departure per
    // input port, one injection per node, per cycle.
    for (const auto &[key, n] : grantsPerOut) {
        if (n > 1) {
            res.add("link-bandwidth",
                    fmt("%u grants through router %d output %d in "
                        "cycle %llu",
                        n, std::get<1>(key), std::get<2>(key),
                        (unsigned long long)std::get<0>(key)));
        }
    }
    for (const auto &[key, n] : departsPerIn) {
        if (n > 1) {
            res.add("link-bandwidth",
                    fmt("%u departures from router %d input %d in "
                        "cycle %llu",
                        n, std::get<1>(key), std::get<2>(key),
                        (unsigned long long)std::get<0>(key)));
        }
    }
    for (const auto &[key, n] : injectsPerNode) {
        if (n > 1) {
            res.add("link-bandwidth",
                    fmt("%u injections at node %d in cycle %llu", n,
                        key.second,
                        (unsigned long long)key.first));
        }
    }

    // queue-bound: replay each input queue's arrivals/departures.
    for (auto &[queue, events] : queueEvents) {
        std::stable_sort(events.begin(), events.end(),
                         [](const QueueEvent &a,
                            const QueueEvent &b) {
                             if (a.cycle != b.cycle)
                                 return a.cycle < b.cycle;
                             return a.arrival < b.arrival;
                         });
        long occupancy = 0;
        for (const QueueEvent &e : events) {
            occupancy += e.arrival ? 1 : -1;
            if (occupancy < 0) {
                res.add("queue-bound",
                        fmt("router %d input %d departs an empty "
                            "queue in cycle %llu",
                            queue.first, queue.second,
                            (unsigned long long)e.cycle));
                occupancy = 0;
            } else if (occupancy > long(params.queueDepth)) {
                res.add("queue-bound",
                        fmt("router %d input %d holds %ld flits in "
                            "cycle %llu (depth %u)",
                            queue.first, queue.second, occupancy,
                            (unsigned long long)e.cycle,
                            params.queueDepth));
            }
        }
    }

    // wormhole-contiguity: rebuild each output port's grant stream.
    for (const trace::FlitRecord &f : sink.flits) {
        if (f.inDir == trace::kDirInject
            || !pktById.count(f.packetId))
            continue;
        portGrants[{f.router, f.outDir}].push_back(
            {f.cycle, f.packetId, f.head, f.tail});
    }
    for (auto &[port, grants] : portGrants) {
        std::stable_sort(grants.begin(), grants.end(),
                         [](const PortGrant &a, const PortGrant &b) {
                             return a.cycle < b.cycle;
                         });
        bool open = false;
        uint64_t owner = 0;
        for (const PortGrant &g : grants) {
            if (!open) {
                if (!g.head) {
                    res.add(
                        "wormhole-contiguity",
                        fmt("router %d output %d grants a non-head "
                            "flit of packet %llu in cycle %llu "
                            "with no wormhole open",
                            port.first, port.second,
                            (unsigned long long)g.packetId,
                            (unsigned long long)g.cycle));
                }
            } else if (g.packetId != owner) {
                res.add("wormhole-contiguity",
                        fmt("router %d output %d interleaves "
                            "packet %llu into packet %llu's "
                            "wormhole in cycle %llu",
                            port.first, port.second,
                            (unsigned long long)g.packetId,
                            (unsigned long long)owner,
                            (unsigned long long)g.cycle));
            }
            // Resync on the observed flit so one bad grant does
            // not cascade into a violation per following flit.
            open = !g.tail;
            owner = g.packetId;
        }
    }

    // flit-conservation and min-latency per packet.
    for (const trace::PacketRecord &p : sink.packets) {
        const PacketFlow &pf = flow[p.id];
        if (pf.injected > p.sizeFlits || pf.injectHeads > 1
            || pf.injectTails > 1) {
            res.add("flit-conservation",
                    fmt("packet %llu (%u flits) injected %u flits "
                        "(%u heads, %u tails)",
                        (unsigned long long)p.id, p.sizeFlits,
                        pf.injected, pf.injectHeads,
                        pf.injectTails));
        }
        if (params.totalCycles && p.inject > params.totalCycles) {
            res.add("cycle-bound",
                    fmt("packet %llu injected at %llu past the "
                        "final cycle %llu",
                        (unsigned long long)p.id,
                        (unsigned long long)p.inject,
                        (unsigned long long)params.totalCycles));
        }
    }
    for (const trace::PacketEjectRecord &e : sink.ejects) {
        auto it = pktById.find(e.id);
        if (it == pktById.end()) {
            res.add("flit-conservation",
                    fmt("eject of unknown packet %llu at node %d",
                        (unsigned long long)e.id, e.node));
            continue;
        }
        const trace::PacketRecord &p = it->second;
        const PacketFlow &pf = flow[p.id];
        unsigned hops = hopsOf(p.src, p.dst);
        if (e.node != p.dst) {
            res.add("flit-conservation",
                    fmt("packet %llu (dst %d) ejected at node %d",
                        (unsigned long long)p.id, p.dst, e.node));
        }
        if (pf.injected != p.sizeFlits
            || pf.ejected != p.sizeFlits) {
            res.add("flit-conservation",
                    fmt("delivered packet %llu (%u flits) injected "
                        "%u and ejected %u",
                        (unsigned long long)p.id, p.sizeFlits,
                        pf.injected, pf.ejected));
        }
        // Every flit is granted once per traversed router on the
        // minimal X-Y path (hops + 1 routers including source and
        // destination).
        if (pf.grants != (hops + 1) * p.sizeFlits) {
            res.add("flit-conservation",
                    fmt("delivered packet %llu made %u grants, "
                        "expected %u (%u hops x %u flits)",
                        (unsigned long long)p.id, pf.grants,
                        (hops + 1) * p.sizeFlits, hops,
                        p.sizeFlits));
        }
        Cycles zero_load = Cycles(hops + 1)
                * (params.routerLatency + 1)
            + (p.sizeFlits - 1);
        if (e.cycle < p.inject
            || e.cycle - p.inject < zero_load) {
            res.add("min-latency",
                    fmt("packet %llu delivered in %lld cycles, "
                        "below the zero-load latency %llu",
                        (unsigned long long)p.id,
                        (long long)(e.cycle - p.inject),
                        (unsigned long long)zero_load));
        }
        if (params.totalCycles && e.cycle > params.totalCycles) {
            res.add("cycle-bound",
                    fmt("packet %llu ejected at %llu past the "
                        "final cycle %llu",
                        (unsigned long long)p.id,
                        (unsigned long long)e.cycle,
                        (unsigned long long)params.totalCycles));
        }
    }

    return res;
}

CheckResult
checkServingCounters(const ServingCheckParams &p)
{
    CheckResult res;
    uint64_t sum =
        p.completed + p.rejected + p.shed + p.timedOut + p.pending;
    if (sum != p.offered) {
        res.add("request-conservation",
                fmt("completed %llu + rejected %llu + shed %llu + "
                    "timed-out %llu + pending %llu = %llu != "
                    "offered %llu",
                    (unsigned long long)p.completed,
                    (unsigned long long)p.rejected,
                    (unsigned long long)p.shed,
                    (unsigned long long)p.timedOut,
                    (unsigned long long)p.pending,
                    (unsigned long long)sum,
                    (unsigned long long)p.offered));
    }
    return res;
}

CheckResult
checkServingTrace(const std::vector<trace::ServingRecord> &reqs,
                  uint64_t offered)
{
    CheckResult res;
    std::unordered_map<uint64_t, size_t> seen;
    for (const trace::ServingRecord &r : reqs) {
        auto [it, fresh] = seen.emplace(r.id, 1);
        if (!fresh) {
            res.add("request-conservation",
                    fmt("request %llu has more than one final "
                        "disposition record",
                        (unsigned long long)r.id));
        }
        if (r.disposition > trace::kDispPending) {
            res.add("request-causality",
                    fmt("request %llu: unknown disposition %u",
                        (unsigned long long)r.id,
                        unsigned(r.disposition)));
            continue;
        }
        bool ran = r.disposition == trace::kDispCompleted;
        if (ran) {
            if (r.start < r.arrival) {
                res.add("request-causality",
                        fmt("request %llu admitted at %llu before "
                            "its arrival at %llu",
                            (unsigned long long)r.id,
                            (unsigned long long)r.start,
                            (unsigned long long)r.arrival));
            }
            if (r.finish < r.start) {
                res.add("request-causality",
                        fmt("request %llu finished at %llu before "
                            "its admission at %llu",
                            (unsigned long long)r.id,
                            (unsigned long long)r.finish,
                            (unsigned long long)r.start));
            }
        } else if (r.disposition != trace::kDispPending
                   && (r.start != 0 || r.finish != 0)) {
            // A rejected, shed, or timed-out request never holds
            // an admission: its stamps must have been cleared.
            res.add("request-causality",
                    fmt("request %llu (disposition %u) never ran "
                        "but carries admission stamps %llu/%llu",
                        (unsigned long long)r.id,
                        unsigned(r.disposition),
                        (unsigned long long)r.start,
                        (unsigned long long)r.finish));
        }
    }
    if (offered && seen.size() != offered) {
        res.add("request-conservation",
                fmt("%zu distinct request records != offered %llu",
                    seen.size(), (unsigned long long)offered));
    }
    return res;
}

CheckResult
checkTrace(const trace::TraceSink &sink,
           const CoreCheckParams &core_params,
           const NocCheckParams &noc_params)
{
    CheckResult res = checkInstTrace(sink.insts, core_params);
    res.merge(checkNocTrace(sink, noc_params));
    res.merge(checkServingTrace(sink.serving));
    return res;
}

} // namespace check
} // namespace maicc
