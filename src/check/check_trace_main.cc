/**
 * @file
 * Offline invariant checker for JSONL commit traces.
 *
 * Re-checks a trace dumped by a bench or test run (--trace=FILE or
 * MAICC_TRACE) against the pipeline and NoC invariants:
 *
 *   check_trace [options] TRACE.jsonl...
 *
 * Options (defaults match CoreConfig / NocConfig):
 *   --wb-ports=N        register write-back ports      (default 1)
 *   --width=N           mesh columns                   (default 16)
 *   --height=N          mesh rows                      (default 16)
 *   --router-latency=N  per-hop pipeline cycles        (default 2)
 *   --queue-depth=N     flits per input queue          (default 4)
 *   --cycles=N          reported total cycles (enables the
 *                       cycle-bound rule; default off)
 *   --offered=N         offered serving requests (enables the
 *                       count-vs-offered half of the
 *                       request-conservation rule; default off)
 *
 * Exits 0 when every file passes, 1 on any violation or I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/invariants.hh"
#include "common/trace.hh"

namespace
{

bool
intFlag(const char *arg, const char *name, long long &out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) || arg[n] != '=')
        return false;
    out = std::strtoll(arg + n + 1, nullptr, 10);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace maicc;

    check::CoreCheckParams core;
    check::NocCheckParams noc;
    long long offered = 0;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        long long v = 0;
        if (intFlag(argv[i], "--wb-ports", v)) {
            core.wbPorts = unsigned(v);
        } else if (intFlag(argv[i], "--width", v)) {
            noc.width = int(v);
        } else if (intFlag(argv[i], "--height", v)) {
            noc.height = int(v);
        } else if (intFlag(argv[i], "--router-latency", v)) {
            noc.routerLatency = unsigned(v);
        } else if (intFlag(argv[i], "--queue-depth", v)) {
            noc.queueDepth = unsigned(v);
        } else if (intFlag(argv[i], "--cycles", v)) {
            core.totalCycles = Cycles(v);
            noc.totalCycles = Cycles(v);
        } else if (intFlag(argv[i], "--offered", v)) {
            offered = v;
        } else if (!std::strncmp(argv[i], "--", 2)) {
            std::fprintf(stderr, "check_trace: unknown option %s\n",
                         argv[i]);
            return 1;
        } else {
            files.push_back(argv[i]);
        }
    }

    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: check_trace [options] TRACE.jsonl...\n");
        return 1;
    }

    bool all_ok = true;
    for (const std::string &path : files) {
        trace::TraceSink sink;
        if (!sink.readJsonlFile(path)) {
            std::fprintf(stderr, "check_trace: cannot parse %s\n",
                         path.c_str());
            all_ok = false;
            continue;
        }
        // Not checkTrace(): the serving rules need the --offered
        // count, so run the three rule sets explicitly.
        check::CheckResult res =
            check::checkInstTrace(sink.insts, core);
        res.merge(check::checkNocTrace(sink, noc));
        res.merge(check::checkServingTrace(
            sink.serving, offered > 0 ? uint64_t(offered) : 0));
        std::printf("%s: %zu inst, %zu pkt, %zu eject, %zu flit, "
                    "%zu serving records -> %zu violation(s)\n",
                    path.c_str(), sink.insts.size(),
                    sink.packets.size(), sink.ejects.size(),
                    sink.flits.size(), sink.serving.size(),
                    res.violations.size());
        if (!res.ok()) {
            std::fputs(res.summary().c_str(), stdout);
            all_ok = false;
        }
    }
    return all_ok ? 0 : 1;
}
