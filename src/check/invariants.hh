/**
 * @file
 * Invariant checkers over commit traces (common/trace.hh).
 *
 * Each checker is a pure function from a trace (plus the few model
 * parameters the trace does not carry) to a list of violations. The
 * rules re-derive pipeline and network legality from the records
 * alone, independently of the model code that produced them, so a
 * scheduling bug in CoreTimingModel or MeshNoc shows up as an
 * inconsistency between records rather than a silently wrong
 * end-to-end cycle count.
 *
 * Core-pipeline rules (checkInstTrace):
 *  - inorder-issue:  issue cycles strictly increase (one in-order
 *                    issue per cycle);
 *  - raw-order:      a consumer never issues before the bypass-ready
 *                    time of the newest prior producer of each
 *                    source register it reads;
 *  - wb-ports:       at most wbPorts register write-backs commit in
 *                    any one cycle;
 *  - slice-overlap:  per CMem slice, array-occupancy intervals
 *                    [dispatch, dispatch + busy) never overlap and
 *                    dispatch in program order;
 *  - cycle-bound:    the reported total cycle count covers every
 *                    event timestamp in the trace.
 *
 * NoC rules (checkNocTrace):
 *  - link-bandwidth:     at most one grant per output port, one
 *                        departure per input port, and one injection
 *                        per node, per cycle;
 *  - queue-bound:        re-simulated input-queue occupancy (from
 *                        arrivals and departures only) never exceeds
 *                        queueDepth and never goes negative;
 *  - wormhole-contiguity: on every output port, between a head grant
 *                        and its tail grant only flits of the same
 *                        packet pass;
 *  - flit-conservation:  every packet injects exactly sizeFlits
 *                        flits (one head, one tail); a delivered
 *                        packet ejects exactly sizeFlits flits at
 *                        its destination and makes exactly
 *                        (hops + 1) * sizeFlits grants (minimal X-Y
 *                        path); no flit belongs to an unknown packet;
 *  - min-latency:        inject-to-eject latency is at least the
 *                        zero-load latency for the packet's hop
 *                        count and size;
 *  - cycle-bound:        no record is stamped after the reported
 *                        final cycle.
 *
 * Serving rules (checkServingCounters / checkServingTrace):
 *  - request-conservation: every offered request ends in exactly
 *                        one disposition class — completed +
 *                        rejected + shed + timed-out + pending ==
 *                        offered — and (trace form) no request id
 *                        appears twice;
 *  - request-causality:  a completed request obeys arrival <=
 *                        start <= finish; requests that never ran
 *                        (rejected/shed/timed-out) carry no
 *                        admission stamp; dispositions are valid.
 */

#ifndef MAICC_CHECK_INVARIANTS_HH
#define MAICC_CHECK_INVARIANTS_HH

#include <string>
#include <vector>

#include "common/trace.hh"

namespace maicc
{
namespace check
{

/** One invariant failure: which rule, and what exactly broke. */
struct Violation
{
    std::string rule;   ///< stable rule name (see file comment)
    std::string detail; ///< human-readable specifics
};

/** Result of one or more checker runs. */
struct CheckResult
{
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }

    /** Record a violation (capped per rule; see kMaxPerRule). */
    void add(const std::string &rule, const std::string &detail);

    /** Fold @p other's violations into this result. */
    void merge(const CheckResult &other);

    /** True if any violation matches @p rule. */
    bool has(const std::string &rule) const;

    /** One line per violation, for logs and test output. */
    std::string summary() const;

    /** Per rule, reporting stops after this many violations. */
    static constexpr size_t kMaxPerRule = 64;
};

/** Model parameters for the core-pipeline rules. */
struct CoreCheckParams
{
    unsigned wbPorts = 1;

    /**
     * CoreRunStats::cycles of the traced run; 0 skips the
     * cycle-bound rule (for traces without a known total).
     */
    Cycles totalCycles = 0;
};

/** Model parameters for the NoC rules (mirrors NocConfig). */
struct NocCheckParams
{
    int width = 16;
    int height = 16;
    unsigned routerLatency = 2;
    unsigned queueDepth = 4;

    /**
     * MeshNoc::now() when the trace was captured; 0 skips the
     * cycle-bound rule.
     */
    Cycles totalCycles = 0;
};

/**
 * Serving-tier disposition counters (runtime/serving.hh
 * ServingResult), for the counter form of request-conservation.
 * Plain integers so the check layer stays independent of the
 * runtime types it audits (maicc_runtime links maicc_check, not
 * the other way around).
 */
struct ServingCheckParams
{
    uint64_t offered = 0;
    uint64_t completed = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;
    uint64_t timedOut = 0;
    uint64_t pending = 0;
};

/** Check request-conservation over the counters alone. */
CheckResult checkServingCounters(const ServingCheckParams &p);

/**
 * Check request-conservation and request-causality over per-request
 * serving records. @p offered enables the count-vs-offered half of
 * conservation (0 checks only id uniqueness and causality, for
 * traces without a known offered count).
 */
CheckResult checkServingTrace(
    const std::vector<trace::ServingRecord> &reqs,
    uint64_t offered = 0);

/** Check the core-pipeline rules over @p insts. */
CheckResult checkInstTrace(
    const std::vector<trace::InstRecord> &insts,
    const CoreCheckParams &params);

/** Check the NoC rules over the packet/eject/flit records. */
CheckResult checkNocTrace(const trace::TraceSink &sink,
                          const NocCheckParams &params);

/**
 * Run every rule set over @p sink (serving records are checked
 * with an unknown offered count) and merge the results.
 */
CheckResult checkTrace(const trace::TraceSink &sink,
                       const CoreCheckParams &core_params,
                       const NocCheckParams &noc_params);

} // namespace check
} // namespace maicc

#endif // MAICC_CHECK_INVARIANTS_HH
