#include "sram/transpose.hh"

#include "common/bitfield.hh"

namespace maicc
{

void
writeTransposed(SramArray &array, unsigned base_row, unsigned n,
                std::span<const int32_t> values, unsigned base_col)
{
    maicc_assert(base_col + values.size() <= Row256::numBits);
    maicc_assert(base_row + n <= array.rows());
    for (unsigned bit = 0; bit < n; ++bit) {
        Row256 row = array.readRow(base_row + bit);
        for (size_t k = 0; k < values.size(); ++k) {
            bool b = (static_cast<uint32_t>(values[k]) >> bit) & 1;
            row.set(base_col + k, b);
        }
        array.writeRow(base_row + bit, row);
    }
}

std::vector<int32_t>
readTransposed(const SramArray &array, unsigned base_row, unsigned n,
               unsigned count, bool is_signed, unsigned base_col)
{
    maicc_assert(base_col + count <= Row256::numBits);
    maicc_assert(base_row + n <= array.rows());
    std::vector<int32_t> out(count, 0);
    for (unsigned bit = 0; bit < n; ++bit) {
        const Row256 &row = array.readRow(base_row + bit);
        for (unsigned k = 0; k < count; ++k) {
            if (row.get(base_col + k))
                out[k] |= 1u << bit;
        }
    }
    if (is_signed) {
        for (auto &v : out)
            v = sext32(static_cast<uint32_t>(v), n);
    }
    return out;
}

} // namespace maicc
