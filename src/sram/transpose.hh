/**
 * @file
 * Helpers for the transposed (bit-serial) data layout: bit i of all
 * elements of a vector lives in row base+i, one element per
 * bit-line. These helpers are shared by the CMem and the Neural
 * Cache baseline.
 */

#ifndef MAICC_SRAM_TRANSPOSE_HH
#define MAICC_SRAM_TRANSPOSE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "sram/sram_array.hh"

namespace maicc
{

/**
 * Write @p values (up to 256 of them) as an n-bit transposed vector
 * starting at word-line @p base_row, one element per bit-line
 * starting at bit-line @p base_col. Values are truncated to their
 * low @p n bits (two's complement for signed data).
 */
void writeTransposed(SramArray &array, unsigned base_row, unsigned n,
                     std::span<const int32_t> values,
                     unsigned base_col = 0);

/**
 * Read @p count elements of an n-bit transposed vector back out.
 * When @p is_signed, the top bit is interpreted as a sign bit.
 */
std::vector<int32_t> readTransposed(const SramArray &array,
                                    unsigned base_row, unsigned n,
                                    unsigned count, bool is_signed,
                                    unsigned base_col = 0);

} // namespace maicc

#endif // MAICC_SRAM_TRANSPOSE_HH
