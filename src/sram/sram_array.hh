/**
 * @file
 * Behavioural model of an SRAM array with bit-line computing
 * (Jeloka et al. [28], as used by Compute Cache / Neural Cache /
 * BLADE and by the CMem of this paper).
 *
 * Activating two word-lines simultaneously yields, on each bit-line
 * pair, the AND (from BL) and NOR (from BLB) of the two stored bits.
 * A subsequent write saves results back, achieving in-place logic.
 * The model also counts word-line activations and row writes so the
 * energy model can charge per-event energies.
 */

#ifndef MAICC_SRAM_SRAM_ARRAY_HH
#define MAICC_SRAM_SRAM_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "sram/bitvec.hh"

namespace maicc
{

/** Result of a dual word-line activation. */
struct BitlineReadout
{
    Row256 andBits; ///< BL senses the AND of the two rows.
    Row256 norBits; ///< BLB senses the NOR of the two rows.
};

/**
 * An SRAM array of @p rows word-lines by 256 bit-lines supporting
 * single-row read/write and dual-row bit-line computing.
 */
class SramArray
{
  public:
    explicit SramArray(unsigned rows) : _rows(rows), data(rows) {}

    unsigned rows() const { return _rows; }

    /** Conventional single word-line read. */
    const Row256 &
    readRow(unsigned row) const
    {
        maicc_assert(row < _rows);
        ++reads;
        return data[row];
    }

    /** Conventional single word-line write. */
    void
    writeRow(unsigned row, const Row256 &value)
    {
        maicc_assert(row < _rows);
        ++writes;
        data[row] = value;
    }

    /**
     * Activate word-lines @p rowA and @p rowB together and sense the
     * bit-lines. The rows must differ: activating a row against
     * itself is not a defined bit-line computing operation.
     */
    BitlineReadout
    computeRows(unsigned rowA, unsigned rowB) const
    {
        maicc_assert(rowA < _rows && rowB < _rows);
        maicc_assert(rowA != rowB);
        ++computes;
        BitlineReadout out;
        out.andBits = data[rowA] & data[rowB];
        out.norBits = ~(data[rowA] | data[rowB]);
        return out;
    }

    /** Direct (non-architectural) access for testing/debug. */
    Row256 &
    peekRow(unsigned row)
    {
        maicc_assert(row < _rows);
        return data[row];
    }

    uint64_t readCount() const { return reads; }
    uint64_t writeCount() const { return writes; }
    uint64_t computeCount() const { return computes; }

    void
    resetCounters()
    {
        reads = writes = computes = 0;
    }

  private:
    unsigned _rows;
    std::vector<Row256> data;
    mutable uint64_t reads = 0;
    uint64_t writes = 0;
    mutable uint64_t computes = 0;
};

} // namespace maicc

#endif // MAICC_SRAM_SRAM_ARRAY_HH
