/**
 * @file
 * A 256-bit row value — the contents of one word-line of an SRAM
 * array with 256 bit-lines (the geometry used throughout the paper:
 * CMem slices are 64x256, Neural Cache arrays are 256x256).
 */

#ifndef MAICC_SRAM_BITVEC_HH
#define MAICC_SRAM_BITVEC_HH

#include <array>
#include <bit>
#include <cstdint>

#include "common/logging.hh"

namespace maicc
{

/** One 256-bit SRAM row. Bit index == bit-line index (0..255). */
class Row256
{
  public:
    static constexpr unsigned numBits = 256;
    static constexpr unsigned numWords = 4;

    Row256() : w{0, 0, 0, 0} {}

    /** Read the bit at bit-line @p idx. */
    bool
    get(unsigned idx) const
    {
        maicc_assert(idx < numBits);
        return (w[idx >> 6] >> (idx & 63)) & 1;
    }

    /** Set the bit at bit-line @p idx to @p val. */
    void
    set(unsigned idx, bool val)
    {
        maicc_assert(idx < numBits);
        uint64_t bit = 1ULL << (idx & 63);
        if (val)
            w[idx >> 6] |= bit;
        else
            w[idx >> 6] &= ~bit;
    }

    /** Set every bit to @p val. */
    void
    fill(bool val)
    {
        for (auto &word : w)
            word = val ? ~0ULL : 0ULL;
    }

    /** Number of set bits (the adder-tree output). */
    unsigned
    popcount() const
    {
        unsigned n = 0;
        for (auto word : w)
            n += std::popcount(word);
        return n;
    }

    /**
     * Shift the whole row by @p chunks 32-bit groups. Positive
     * shifts move bits toward higher bit-line indices; vacated
     * positions fill with zero. Models the paper's ShiftRow.C.
     */
    Row256
    shifted32(int chunks) const
    {
        Row256 out;
        for (unsigned g = 0; g < 8; ++g) {
            int src = static_cast<int>(g) - chunks;
            if (src < 0 || src >= 8)
                continue;
            uint32_t v = group32(src);
            out.setGroup32(g, v);
        }
        return out;
    }

    /** Read 32-bit group @p g (bit-lines 32g .. 32g+31). */
    uint32_t
    group32(unsigned g) const
    {
        maicc_assert(g < 8);
        return static_cast<uint32_t>(w[g >> 1] >> ((g & 1) * 32));
    }

    /** Write 32-bit group @p g. */
    void
    setGroup32(unsigned g, uint32_t val)
    {
        maicc_assert(g < 8);
        unsigned word = g >> 1;
        unsigned sh = (g & 1) * 32;
        w[word] = (w[word] & ~(0xFFFFFFFFULL << sh))
            | (static_cast<uint64_t>(val) << sh);
    }

    Row256
    operator&(const Row256 &o) const
    {
        Row256 r;
        for (unsigned i = 0; i < numWords; ++i)
            r.w[i] = w[i] & o.w[i];
        return r;
    }

    Row256
    operator|(const Row256 &o) const
    {
        Row256 r;
        for (unsigned i = 0; i < numWords; ++i)
            r.w[i] = w[i] | o.w[i];
        return r;
    }

    Row256
    operator^(const Row256 &o) const
    {
        Row256 r;
        for (unsigned i = 0; i < numWords; ++i)
            r.w[i] = w[i] ^ o.w[i];
        return r;
    }

    Row256
    operator~() const
    {
        Row256 r;
        for (unsigned i = 0; i < numWords; ++i)
            r.w[i] = ~w[i];
        return r;
    }

    bool operator==(const Row256 &o) const = default;

    std::array<uint64_t, numWords> w;
};

} // namespace maicc

#endif // MAICC_SRAM_BITVEC_HH
