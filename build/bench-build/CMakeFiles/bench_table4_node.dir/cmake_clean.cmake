file(REMOVE_RECURSE
  "../bench/bench_table4_node"
  "../bench/bench_table4_node.pdb"
  "CMakeFiles/bench_table4_node.dir/bench_table4_node.cc.o"
  "CMakeFiles/bench_table4_node.dir/bench_table4_node.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
