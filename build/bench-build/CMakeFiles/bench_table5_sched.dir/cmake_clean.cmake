file(REMOVE_RECURSE
  "../bench/bench_table5_sched"
  "../bench/bench_table5_sched.pdb"
  "CMakeFiles/bench_table5_sched.dir/bench_table5_sched.cc.o"
  "CMakeFiles/bench_table5_sched.dir/bench_table5_sched.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
