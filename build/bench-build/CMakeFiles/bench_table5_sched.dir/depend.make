# Empty dependencies file for bench_table5_sched.
# This may be replaced when dependencies are built.
