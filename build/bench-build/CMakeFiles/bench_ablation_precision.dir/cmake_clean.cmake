file(REMOVE_RECURSE
  "../bench/bench_ablation_precision"
  "../bench/bench_ablation_precision.pdb"
  "CMakeFiles/bench_ablation_precision.dir/bench_ablation_precision.cc.o"
  "CMakeFiles/bench_ablation_precision.dir/bench_ablation_precision.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
