# Empty compiler generated dependencies file for bench_table2_isa.
# This may be replaced when dependencies are built.
