file(REMOVE_RECURSE
  "../bench/bench_table2_isa"
  "../bench/bench_table2_isa.pdb"
  "CMakeFiles/bench_table2_isa.dir/bench_table2_isa.cc.o"
  "CMakeFiles/bench_table2_isa.dir/bench_table2_isa.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
