file(REMOVE_RECURSE
  "../bench/bench_table6_mapping"
  "../bench/bench_table6_mapping.pdb"
  "CMakeFiles/bench_table6_mapping.dir/bench_table6_mapping.cc.o"
  "CMakeFiles/bench_table6_mapping.dir/bench_table6_mapping.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
