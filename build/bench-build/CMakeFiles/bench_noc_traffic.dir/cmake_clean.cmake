file(REMOVE_RECURSE
  "../bench/bench_noc_traffic"
  "../bench/bench_noc_traffic.pdb"
  "CMakeFiles/bench_noc_traffic.dir/bench_noc_traffic.cc.o"
  "CMakeFiles/bench_noc_traffic.dir/bench_noc_traffic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noc_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
