# Empty compiler generated dependencies file for multi_dnn_parallel.
# This may be replaced when dependencies are built.
