file(REMOVE_RECURSE
  "CMakeFiles/multi_dnn_parallel.dir/multi_dnn_parallel.cpp.o"
  "CMakeFiles/multi_dnn_parallel.dir/multi_dnn_parallel.cpp.o.d"
  "multi_dnn_parallel"
  "multi_dnn_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_dnn_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
