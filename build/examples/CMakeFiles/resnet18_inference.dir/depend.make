# Empty dependencies file for resnet18_inference.
# This may be replaced when dependencies are built.
