file(REMOVE_RECURSE
  "CMakeFiles/resnet18_inference.dir/resnet18_inference.cpp.o"
  "CMakeFiles/resnet18_inference.dir/resnet18_inference.cpp.o.d"
  "resnet18_inference"
  "resnet18_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet18_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
