file(REMOVE_RECURSE
  "libmaicc_core.a"
)
