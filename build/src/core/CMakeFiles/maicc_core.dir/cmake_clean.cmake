file(REMOVE_RECURSE
  "CMakeFiles/maicc_core.dir/aux_kernels.cc.o"
  "CMakeFiles/maicc_core.dir/aux_kernels.cc.o.d"
  "CMakeFiles/maicc_core.dir/conv_kernel.cc.o"
  "CMakeFiles/maicc_core.dir/conv_kernel.cc.o.d"
  "CMakeFiles/maicc_core.dir/scheduler.cc.o"
  "CMakeFiles/maicc_core.dir/scheduler.cc.o.d"
  "CMakeFiles/maicc_core.dir/timing.cc.o"
  "CMakeFiles/maicc_core.dir/timing.cc.o.d"
  "libmaicc_core.a"
  "libmaicc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
