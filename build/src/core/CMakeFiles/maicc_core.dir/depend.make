# Empty dependencies file for maicc_core.
# This may be replaced when dependencies are built.
