file(REMOVE_RECURSE
  "CMakeFiles/maicc_baseline.dir/platforms.cc.o"
  "CMakeFiles/maicc_baseline.dir/platforms.cc.o.d"
  "CMakeFiles/maicc_baseline.dir/scalar_conv.cc.o"
  "CMakeFiles/maicc_baseline.dir/scalar_conv.cc.o.d"
  "libmaicc_baseline.a"
  "libmaicc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
