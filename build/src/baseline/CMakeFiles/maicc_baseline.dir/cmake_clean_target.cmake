file(REMOVE_RECURSE
  "libmaicc_baseline.a"
)
