# Empty dependencies file for maicc_baseline.
# This may be replaced when dependencies are built.
