# Empty compiler generated dependencies file for maicc_cmem.
# This may be replaced when dependencies are built.
