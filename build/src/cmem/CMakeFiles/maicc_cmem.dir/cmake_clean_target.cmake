file(REMOVE_RECURSE
  "libmaicc_cmem.a"
)
