file(REMOVE_RECURSE
  "CMakeFiles/maicc_cmem.dir/cmem.cc.o"
  "CMakeFiles/maicc_cmem.dir/cmem.cc.o.d"
  "libmaicc_cmem.a"
  "libmaicc_cmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_cmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
