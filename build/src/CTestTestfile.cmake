# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sram")
subdirs("cmem")
subdirs("rv32")
subdirs("mem")
subdirs("core")
subdirs("noc")
subdirs("dram")
subdirs("nn")
subdirs("mapping")
subdirs("energy")
subdirs("runtime")
subdirs("neuralcache")
subdirs("baseline")
