file(REMOVE_RECURSE
  "libmaicc_dram.a"
)
