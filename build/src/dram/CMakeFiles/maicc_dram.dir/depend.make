# Empty dependencies file for maicc_dram.
# This may be replaced when dependencies are built.
