file(REMOVE_RECURSE
  "CMakeFiles/maicc_dram.dir/dram.cc.o"
  "CMakeFiles/maicc_dram.dir/dram.cc.o.d"
  "libmaicc_dram.a"
  "libmaicc_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
