file(REMOVE_RECURSE
  "libmaicc_mapping.a"
)
