# Empty dependencies file for maicc_mapping.
# This may be replaced when dependencies are built.
