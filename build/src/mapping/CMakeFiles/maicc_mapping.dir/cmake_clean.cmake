file(REMOVE_RECURSE
  "CMakeFiles/maicc_mapping.dir/allocation.cc.o"
  "CMakeFiles/maicc_mapping.dir/allocation.cc.o.d"
  "CMakeFiles/maicc_mapping.dir/placement.cc.o"
  "CMakeFiles/maicc_mapping.dir/placement.cc.o.d"
  "CMakeFiles/maicc_mapping.dir/segmentation.cc.o"
  "CMakeFiles/maicc_mapping.dir/segmentation.cc.o.d"
  "libmaicc_mapping.a"
  "libmaicc_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
