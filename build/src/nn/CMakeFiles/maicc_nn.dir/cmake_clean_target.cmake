file(REMOVE_RECURSE
  "libmaicc_nn.a"
)
