file(REMOVE_RECURSE
  "CMakeFiles/maicc_nn.dir/network.cc.o"
  "CMakeFiles/maicc_nn.dir/network.cc.o.d"
  "CMakeFiles/maicc_nn.dir/reference.cc.o"
  "CMakeFiles/maicc_nn.dir/reference.cc.o.d"
  "libmaicc_nn.a"
  "libmaicc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
