# Empty dependencies file for maicc_nn.
# This may be replaced when dependencies are built.
