
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rv32/assembler.cc" "src/rv32/CMakeFiles/maicc_rv32.dir/assembler.cc.o" "gcc" "src/rv32/CMakeFiles/maicc_rv32.dir/assembler.cc.o.d"
  "/root/repo/src/rv32/encoding.cc" "src/rv32/CMakeFiles/maicc_rv32.dir/encoding.cc.o" "gcc" "src/rv32/CMakeFiles/maicc_rv32.dir/encoding.cc.o.d"
  "/root/repo/src/rv32/executor.cc" "src/rv32/CMakeFiles/maicc_rv32.dir/executor.cc.o" "gcc" "src/rv32/CMakeFiles/maicc_rv32.dir/executor.cc.o.d"
  "/root/repo/src/rv32/inst.cc" "src/rv32/CMakeFiles/maicc_rv32.dir/inst.cc.o" "gcc" "src/rv32/CMakeFiles/maicc_rv32.dir/inst.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cmem/CMakeFiles/maicc_cmem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/maicc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/maicc_sram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
