file(REMOVE_RECURSE
  "CMakeFiles/maicc_rv32.dir/assembler.cc.o"
  "CMakeFiles/maicc_rv32.dir/assembler.cc.o.d"
  "CMakeFiles/maicc_rv32.dir/encoding.cc.o"
  "CMakeFiles/maicc_rv32.dir/encoding.cc.o.d"
  "CMakeFiles/maicc_rv32.dir/executor.cc.o"
  "CMakeFiles/maicc_rv32.dir/executor.cc.o.d"
  "CMakeFiles/maicc_rv32.dir/inst.cc.o"
  "CMakeFiles/maicc_rv32.dir/inst.cc.o.d"
  "libmaicc_rv32.a"
  "libmaicc_rv32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_rv32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
