# Empty compiler generated dependencies file for maicc_rv32.
# This may be replaced when dependencies are built.
