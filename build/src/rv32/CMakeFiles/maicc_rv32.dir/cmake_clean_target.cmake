file(REMOVE_RECURSE
  "libmaicc_rv32.a"
)
