# Empty compiler generated dependencies file for maicc_neuralcache.
# This may be replaced when dependencies are built.
