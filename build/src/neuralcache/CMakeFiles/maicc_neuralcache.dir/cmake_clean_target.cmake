file(REMOVE_RECURSE
  "libmaicc_neuralcache.a"
)
