file(REMOVE_RECURSE
  "CMakeFiles/maicc_neuralcache.dir/neural_cache.cc.o"
  "CMakeFiles/maicc_neuralcache.dir/neural_cache.cc.o.d"
  "libmaicc_neuralcache.a"
  "libmaicc_neuralcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_neuralcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
