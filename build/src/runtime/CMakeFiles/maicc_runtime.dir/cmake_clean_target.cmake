file(REMOVE_RECURSE
  "libmaicc_runtime.a"
)
