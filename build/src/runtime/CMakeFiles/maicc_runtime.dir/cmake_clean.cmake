file(REMOVE_RECURSE
  "CMakeFiles/maicc_runtime.dir/host.cc.o"
  "CMakeFiles/maicc_runtime.dir/host.cc.o.d"
  "CMakeFiles/maicc_runtime.dir/system.cc.o"
  "CMakeFiles/maicc_runtime.dir/system.cc.o.d"
  "libmaicc_runtime.a"
  "libmaicc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
