# Empty compiler generated dependencies file for maicc_runtime.
# This may be replaced when dependencies are built.
