file(REMOVE_RECURSE
  "CMakeFiles/maicc_noc.dir/noc.cc.o"
  "CMakeFiles/maicc_noc.dir/noc.cc.o.d"
  "libmaicc_noc.a"
  "libmaicc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
