file(REMOVE_RECURSE
  "libmaicc_noc.a"
)
