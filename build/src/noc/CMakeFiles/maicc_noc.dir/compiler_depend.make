# Empty compiler generated dependencies file for maicc_noc.
# This may be replaced when dependencies are built.
