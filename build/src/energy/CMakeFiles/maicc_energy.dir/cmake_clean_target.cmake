file(REMOVE_RECURSE
  "libmaicc_energy.a"
)
