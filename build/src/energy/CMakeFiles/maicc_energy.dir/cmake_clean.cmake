file(REMOVE_RECURSE
  "CMakeFiles/maicc_energy.dir/energy.cc.o"
  "CMakeFiles/maicc_energy.dir/energy.cc.o.d"
  "libmaicc_energy.a"
  "libmaicc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
