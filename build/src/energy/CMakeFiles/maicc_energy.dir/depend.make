# Empty dependencies file for maicc_energy.
# This may be replaced when dependencies are built.
