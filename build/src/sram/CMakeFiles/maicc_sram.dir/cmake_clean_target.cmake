file(REMOVE_RECURSE
  "libmaicc_sram.a"
)
