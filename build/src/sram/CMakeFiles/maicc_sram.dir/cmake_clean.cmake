file(REMOVE_RECURSE
  "CMakeFiles/maicc_sram.dir/transpose.cc.o"
  "CMakeFiles/maicc_sram.dir/transpose.cc.o.d"
  "libmaicc_sram.a"
  "libmaicc_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
