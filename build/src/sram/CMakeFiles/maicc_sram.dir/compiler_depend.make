# Empty compiler generated dependencies file for maicc_sram.
# This may be replaced when dependencies are built.
