# Empty dependencies file for maicc_mem.
# This may be replaced when dependencies are built.
