file(REMOVE_RECURSE
  "CMakeFiles/maicc_mem.dir/llc.cc.o"
  "CMakeFiles/maicc_mem.dir/llc.cc.o.d"
  "CMakeFiles/maicc_mem.dir/node_memory.cc.o"
  "CMakeFiles/maicc_mem.dir/node_memory.cc.o.d"
  "CMakeFiles/maicc_mem.dir/row_store.cc.o"
  "CMakeFiles/maicc_mem.dir/row_store.cc.o.d"
  "libmaicc_mem.a"
  "libmaicc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
