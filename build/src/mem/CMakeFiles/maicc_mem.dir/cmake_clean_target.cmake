file(REMOVE_RECURSE
  "libmaicc_mem.a"
)
