file(REMOVE_RECURSE
  "libmaicc_common.a"
)
