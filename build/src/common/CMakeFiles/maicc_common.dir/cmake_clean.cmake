file(REMOVE_RECURSE
  "CMakeFiles/maicc_common.dir/logging.cc.o"
  "CMakeFiles/maicc_common.dir/logging.cc.o.d"
  "CMakeFiles/maicc_common.dir/stats.cc.o"
  "CMakeFiles/maicc_common.dir/stats.cc.o.d"
  "CMakeFiles/maicc_common.dir/table.cc.o"
  "CMakeFiles/maicc_common.dir/table.cc.o.d"
  "libmaicc_common.a"
  "libmaicc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maicc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
