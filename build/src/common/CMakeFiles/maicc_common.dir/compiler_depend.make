# Empty compiler generated dependencies file for maicc_common.
# This may be replaced when dependencies are built.
