# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sram[1]_include.cmake")
include("/root/repo/build/tests/test_cmem[1]_include.cmake")
include("/root/repo/build/tests/test_rv32[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_neuralcache[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
