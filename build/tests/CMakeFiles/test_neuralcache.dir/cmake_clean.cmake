file(REMOVE_RECURSE
  "CMakeFiles/test_neuralcache.dir/neuralcache/test_neural_cache.cc.o"
  "CMakeFiles/test_neuralcache.dir/neuralcache/test_neural_cache.cc.o.d"
  "test_neuralcache"
  "test_neuralcache.pdb"
  "test_neuralcache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neuralcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
