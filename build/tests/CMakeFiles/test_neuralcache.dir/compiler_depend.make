# Empty compiler generated dependencies file for test_neuralcache.
# This may be replaced when dependencies are built.
