
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_noc_crossvalidation.cc" "tests/CMakeFiles/test_integration.dir/integration/test_noc_crossvalidation.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_noc_crossvalidation.cc.o.d"
  "/root/repo/tests/integration/test_two_node_chain.cc" "tests/CMakeFiles/test_integration.dir/integration/test_two_node_chain.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_two_node_chain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/maicc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/maicc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/maicc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/rv32/CMakeFiles/maicc_rv32.dir/DependInfo.cmake"
  "/root/repo/build/src/cmem/CMakeFiles/maicc_cmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/maicc_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/maicc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
