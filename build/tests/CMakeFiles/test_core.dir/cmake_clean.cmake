file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_aux_kernels.cc.o"
  "CMakeFiles/test_core.dir/core/test_aux_kernels.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_conv_kernel.cc.o"
  "CMakeFiles/test_core.dir/core/test_conv_kernel.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_conv_kernel_sweep.cc.o"
  "CMakeFiles/test_core.dir/core/test_conv_kernel_sweep.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_scheduler.cc.o"
  "CMakeFiles/test_core.dir/core/test_scheduler.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_scheduler_random.cc.o"
  "CMakeFiles/test_core.dir/core/test_scheduler_random.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_timing.cc.o"
  "CMakeFiles/test_core.dir/core/test_timing.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
