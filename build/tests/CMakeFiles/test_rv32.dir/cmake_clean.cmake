file(REMOVE_RECURSE
  "CMakeFiles/test_rv32.dir/rv32/test_encoding.cc.o"
  "CMakeFiles/test_rv32.dir/rv32/test_encoding.cc.o.d"
  "CMakeFiles/test_rv32.dir/rv32/test_executor.cc.o"
  "CMakeFiles/test_rv32.dir/rv32/test_executor.cc.o.d"
  "CMakeFiles/test_rv32.dir/rv32/test_isa_fuzz.cc.o"
  "CMakeFiles/test_rv32.dir/rv32/test_isa_fuzz.cc.o.d"
  "test_rv32"
  "test_rv32.pdb"
  "test_rv32[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rv32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
