# Empty dependencies file for test_cmem.
# This may be replaced when dependencies are built.
