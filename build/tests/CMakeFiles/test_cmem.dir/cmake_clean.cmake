file(REMOVE_RECURSE
  "CMakeFiles/test_cmem.dir/cmem/test_cmem.cc.o"
  "CMakeFiles/test_cmem.dir/cmem/test_cmem.cc.o.d"
  "CMakeFiles/test_cmem.dir/cmem/test_cmem_mac_property.cc.o"
  "CMakeFiles/test_cmem.dir/cmem/test_cmem_mac_property.cc.o.d"
  "test_cmem"
  "test_cmem.pdb"
  "test_cmem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
